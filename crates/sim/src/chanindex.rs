//! Per-channel secondary indices over slab slots.
//!
//! The engine keeps two of these: pending lockstep `Settle` event ids and
//! in-flight hop-by-hop unit ids, each indexed by the channels their path
//! traverses. A topology-churn close then touches only its own channel's
//! work instead of walking the whole event/unit slab — the scan that made
//! churn cost O(total scheduled work) at paper scale.
//!
//! Slab slots are recycled, so entries carry the slot's **generation** at
//! insertion time; an entry whose generation no longer matches is stale
//! and skipped. Stale entries are removed lazily: membership is a cheap
//! `Vec` push, death is a counter decrement, and a channel's entry list is
//! compacted whenever it grows past twice its live population — keeping
//! every query O(live members) amortized, never O(total ever inserted).

/// Per-channel membership lists with generation-checked lazy deletion.
#[derive(Debug, Default)]
pub struct ChannelIndex {
    /// `entries[c]`: `(slot, generation)` pairs, possibly stale.
    entries: Vec<Vec<(u32, u32)>>,
    /// `live[c]`: exact count of live members (maintained by callers via
    /// [`ChannelIndex::insert`] / [`ChannelIndex::note_removed`]).
    live: Vec<u32>,
    /// Entries examined by **queries** ([`ChannelIndex::collect_live_sorted`])
    /// — the observable the churn-cost regression tests assert stays
    /// O(the channel's live work), not O(total slab). Compaction scans are
    /// counted separately: they are amortized insertion cost, already
    /// visible in the throughput benchmarks.
    scan_steps: u64,
    /// Entries examined by amortized compaction during inserts.
    compact_steps: u64,
}

impl ChannelIndex {
    /// An index over `n` channels with no members.
    pub fn new(n: usize) -> Self {
        ChannelIndex {
            entries: (0..n).map(|_| Vec::new()).collect(),
            live: vec![0; n],
            scan_steps: 0,
            compact_steps: 0,
        }
    }

    /// Registers slot `slot` (at generation `gen`) as a member of channel
    /// `c`. `alive` decides entry liveness for the amortized compaction.
    pub fn insert(&mut self, c: usize, slot: u32, gen: u32, alive: impl Fn(u32, u32) -> bool) {
        let list = &mut self.entries[c];
        if list.len() >= 16 && list.len() as u32 > 2 * self.live[c] {
            self.compact_steps += list.len() as u64;
            list.retain(|&(s, g)| alive(s, g));
        }
        list.push((slot, gen));
        self.live[c] += 1;
    }

    /// Notes that one live member of channel `c` died (its entry goes
    /// stale and is collected lazily).
    pub fn note_removed(&mut self, c: usize) {
        debug_assert!(self.live[c] > 0, "removing from an empty channel");
        self.live[c] -= 1;
    }

    /// Exact live-member count of channel `c`.
    pub fn live(&self, c: usize) -> u32 {
        self.live[c]
    }

    /// The raw (possibly stale) entry list of channel `c` — for the debug
    /// consistency assertions and the microbenchmarks.
    pub fn entries(&self, c: usize) -> &[(u32, u32)] {
        &self.entries[c]
    }

    /// Collects channel `c`'s live member slots into `out`, sorted
    /// ascending (slab order — the order the old full-slab scan visited
    /// them, which churn determinism depends on). Compacts the entry list
    /// to exactly the live set as a side effect.
    pub fn collect_live_sorted(
        &mut self,
        c: usize,
        alive: impl Fn(u32, u32) -> bool,
        out: &mut Vec<u32>,
    ) {
        out.clear();
        let list = &mut self.entries[c];
        self.scan_steps += list.len() as u64;
        list.retain(|&(s, g)| alive(s, g));
        out.extend(list.iter().map(|&(s, _)| s));
        out.sort_unstable();
        debug_assert_eq!(out.len(), self.live[c] as usize, "live count drifted");
    }

    /// Total entries examined across all queries.
    pub fn scan_steps(&self) -> u64 {
        self.scan_steps
    }

    /// Total entries examined by amortized compaction (insert-side cost).
    pub fn compact_steps(&self) -> u64 {
        self.compact_steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn collects_live_members_sorted_and_skips_stale() {
        let mut idx = ChannelIndex::new(2);
        let mut gens = vec![0u32; 8];
        let mut dead: HashSet<u32> = HashSet::new();
        for s in [3u32, 1, 5] {
            let (g, d) = (gens.clone(), dead.clone());
            idx.insert(0, s, gens[s as usize], move |s, gen| {
                g[s as usize] == gen && !d.contains(&s)
            });
        }
        idx.insert(1, 2, 0, |_, _| true);
        // Slot 1 dies; slot 5 dies and is recycled at a new generation.
        dead.insert(1);
        idx.note_removed(0);
        dead.insert(5);
        idx.note_removed(0);
        gens[5] = 1;
        let mut out = Vec::new();
        let (g, d) = (gens.clone(), dead.clone());
        idx.collect_live_sorted(
            0,
            |s, gen| g[s as usize] == gen && !d.contains(&s),
            &mut out,
        );
        assert_eq!(out, vec![3]);
        let (g, d) = (gens.clone(), dead.clone());
        idx.collect_live_sorted(
            1,
            |s, gen| g[s as usize] == gen && !d.contains(&s),
            &mut out,
        );
        assert_eq!(out, vec![2]);
    }

    #[test]
    fn compaction_bounds_entry_growth() {
        // Insert/kill cycles far beyond the live population: the entry
        // list must stay proportional to live, not total ever inserted.
        let mut idx = ChannelIndex::new(1);
        let mut gens = vec![0u32; 4];
        for round in 0..1_000u32 {
            let slot = round % 4;
            gens[slot as usize] = round;
            let snapshot = gens.clone();
            idx.insert(0, slot, round, move |s, g| snapshot[s as usize] == g);
            if round >= 3 {
                idx.note_removed(0); // steady state: ~4 live
            }
        }
        assert!(idx.live(0) <= 4);
        assert!(
            idx.entries(0).len() <= 16.max(2 * idx.live(0) as usize + 1),
            "entries grew unboundedly: {}",
            idx.entries(0).len()
        );
    }
}
