//! Runtime invariant monitor: periodic in-run checks of the engine's
//! structural invariants, recorded into a structured report.
//!
//! Debug builds already assert conservation and index coherence on every
//! step; release builds (benchmarks, CI smokes, long sweeps) run blind.
//! The monitor closes that gap: when
//! [`ObsConfig::invariants_every`](crate::config::ObsConfig) is nonzero,
//! the engine re-verifies its invariants every K executed events —
//! conservation on every channel, queue-bound compliance, unit-state
//! legality (an alive unit has exactly one pending event and a hop
//! cursor inside its path), and per-payment accounting — and records
//! each violation here instead of panicking, so a corrupted run still
//! finishes and reports *what* broke and *when*.
//!
//! The monitor is read-only over engine state: enabling it never changes
//! simulation outcomes (a CI smoke pins monitored ≡ unmonitored reports
//! bit-for-bit), and `invariants_every: 0` skips even the step counter's
//! branch companion — zero cost when off.

use std::fmt::Write as _;

/// Field names of an [`InvariantViolation`] JSONL line, in render order.
pub const VIOLATION_HEADER: &str = "t_us,step,check,detail";

/// Violations kept per report; later ones only bump the counter (a
/// broken invariant tends to re-fire every check, so the first few
/// records carry all the signal).
const MAX_RECORDED: usize = 64;

/// One invariant violation observed mid-run.
#[derive(Debug, Clone, PartialEq)]
pub struct InvariantViolation {
    /// Simulated time of the failing check, microseconds.
    pub t_us: u64,
    /// Executed-event count when the check ran.
    pub step: u64,
    /// Which invariant failed: `"conservation"`, `"queue_bounds"`,
    /// `"unit_state"`, or `"payment_accounting"`.
    pub check: &'static str,
    /// Human-readable specifics (channel / unit / payment and values).
    pub detail: String,
}

/// The monitor: a check cadence, counters, and the bounded violation log.
#[derive(Debug, Clone)]
pub struct InvariantMonitor {
    every: u64,
    steps: u64,
    checks_run: u64,
    violations_total: u64,
    violations: Vec<InvariantViolation>,
}

impl InvariantMonitor {
    /// A monitor that checks every `every` executed events (`every` ≥ 1).
    pub fn new(every: u64) -> Self {
        InvariantMonitor {
            every: every.max(1),
            steps: 0,
            checks_run: 0,
            violations_total: 0,
            violations: Vec::new(),
        }
    }

    /// Advances the step counter; true when a full check is due now.
    pub fn step_due(&mut self) -> bool {
        self.steps += 1;
        self.steps.is_multiple_of(self.every)
    }

    /// Marks one full invariant sweep as run.
    pub fn note_check(&mut self) {
        self.checks_run += 1;
    }

    /// Records one violation (bounded; the total always counts).
    pub fn record(&mut self, t_us: u64, check: &'static str, detail: String) {
        self.violations_total += 1;
        if self.violations.len() < MAX_RECORDED {
            self.violations.push(InvariantViolation {
                t_us,
                step: self.steps,
                check,
                detail,
            });
        }
    }

    /// Finalizes into the post-run report.
    pub fn finish(self) -> InvariantReport {
        InvariantReport {
            every: self.every,
            checks_run: self.checks_run,
            violations_total: self.violations_total,
            violations: self.violations,
        }
    }
}

/// The post-run invariant report (see
/// `Simulation::take_invariant_report`).
#[derive(Debug, Clone, PartialEq)]
pub struct InvariantReport {
    /// Configured check cadence (executed events between sweeps).
    pub every: u64,
    /// Full invariant sweeps performed.
    pub checks_run: u64,
    /// Violations observed (including those beyond the recorded cap).
    pub violations_total: u64,
    /// The first [`MAX_RECORDED`] violations, in observation order.
    pub violations: Vec<InvariantViolation>,
}

impl InvariantReport {
    /// True when every sweep passed.
    pub fn is_clean(&self) -> bool {
        self.violations_total == 0
    }

    /// Renders the recorded violations as JSONL with fixed field order
    /// matching [`VIOLATION_HEADER`].
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            write!(
                out,
                "{{\"t_us\":{},\"step\":{},\"check\":\"{}\",\"detail\":\"{}\"}}",
                v.t_us,
                v.step,
                v.check,
                v.detail.replace('\\', "\\\\").replace('"', "\\\""),
            )
            .expect("string write");
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cadence_counts_steps() {
        let mut m = InvariantMonitor::new(3);
        let due: Vec<bool> = (0..7).map(|_| m.step_due()).collect();
        assert_eq!(due, vec![false, false, true, false, false, true, false]);
        // `0` is clamped to every-step checking, not disabled (the engine
        // gates on the config before constructing a monitor).
        let mut every_step = InvariantMonitor::new(0);
        assert!(every_step.step_due());
    }

    #[test]
    fn violations_are_bounded_but_counted() {
        let mut m = InvariantMonitor::new(1);
        for i in 0..(MAX_RECORDED as u64 + 10) {
            m.record(i, "conservation", format!("channel {i}"));
        }
        let r = m.finish();
        assert!(!r.is_clean());
        assert_eq!(r.violations_total, MAX_RECORDED as u64 + 10);
        assert_eq!(r.violations.len(), MAX_RECORDED);
        assert_eq!(r.violations[0].detail, "channel 0");
    }

    #[test]
    fn jsonl_has_fixed_fields_and_escapes() {
        let mut m = InvariantMonitor::new(1);
        assert!(m.step_due());
        m.note_check();
        m.record(42, "queue_bounds", "queue \"7\" over".into());
        let r = m.finish();
        assert_eq!(r.checks_run, 1);
        let out = r.to_jsonl();
        assert_eq!(out.lines().count(), 1);
        for col in VIOLATION_HEADER.split(',') {
            assert!(out.contains(&format!("\"{col}\":")), "missing {col}: {out}");
        }
        assert!(out.contains("\\\"7\\\""), "quotes must be escaped: {out}");
        assert_eq!(out, r.to_jsonl(), "rendering must be pure");
    }

    #[test]
    fn clean_report_renders_nothing() {
        let mut m = InvariantMonitor::new(5);
        m.note_check();
        let r = m.finish();
        assert!(r.is_clean());
        assert_eq!(r.to_jsonl(), "");
    }
}
