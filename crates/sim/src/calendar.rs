//! The engine's calendar: a bucketed calendar queue (timing wheel with a
//! heap overflow tier).
//!
//! The classic DES result (Brown's calendar queues, the timing wheels of
//! ns-style simulators): when event times are spread over a bounded
//! near-future window, bucketing by time slice makes `push`/`pop` O(1)
//! amortized instead of the O(log n) of a binary heap — the difference
//! between laptop-scale excerpts and the paper's full 200 s horizons.
//!
//! * Events due within the wheel span (`n_buckets × bucket_width`) go into
//!   the bucket covering their time slice, unsorted.
//! * Events beyond the span go into a [`BinaryHeap`] **overflow tier** and
//!   migrate into their bucket when the cursor reaches it.
//! * Popping drains one bucket at a time: the bucket is sorted by
//!   `(time, seq)` once and then consumed in order, so the pop sequence is
//!   **exactly** the order a global `BinaryHeap` over `(time, seq)` would
//!   produce — same-time ties break by insertion sequence, bit for bit
//!   (the property the determinism goldens pin; see the proptest below).
//!
//! Cancellation is the engine's concern: canceled events stay queued and
//! are skipped at pop time (`event_store[id] = None`), so the queue never
//! needs removal.

use spider_types::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One queued entry: `(time µs, seq, event id)`. Lexicographic tuple order
/// is exactly the engine's `(SimTime, seq)` priority (ids never tie —
/// seqs are unique).
type Entry = (u64, u64, usize);

/// Default bucket width: 1 ms of simulated time (the ISP workload's mean
/// inter-arrival time), so steady-state buckets hold a handful of events.
pub const DEFAULT_BUCKET_WIDTH_US: u64 = 1_000;

/// Default bucket count (power of two). 4096 × 1 ms ≈ 4.1 s of wheel span
/// covers every recurring engine delay (hop 10 ms, poll 100 ms, settle
/// 0.5 s, queue timeout 1.5 s); only rarities like on-chain rebalancing
/// confirmations hit the overflow heap.
pub const DEFAULT_N_BUCKETS: usize = 4096;

/// A bucketed calendar queue over `(SimTime, seq, id)` entries.
///
/// Pops are globally ordered by `(time, seq)`. Pushing a time earlier than
/// an already-popped entry is a caller bug (time cannot run backwards);
/// pushing *at* the current drain instant with a fresh (higher) seq — or a
/// reserved seq that still orders after everything already popped — is
/// fully supported, which is what lets the engine merge streaming arrivals
/// into the calendar as they become due.
#[derive(Debug)]
pub struct CalendarQueue {
    /// The wheel. `buckets[(cursor + k) & mask]` covers
    /// `[wheel_time + k·width, wheel_time + (k+1)·width)`.
    buckets: Vec<Vec<Entry>>,
    /// Bucket width in µs.
    width: u64,
    /// `n_buckets − 1` (bucket count is a power of two).
    mask: usize,
    /// Start instant of the bucket at `cursor` — the next bucket to drain.
    wheel_time: u64,
    cursor: usize,
    /// Entries currently resident in wheel buckets.
    wheel_len: usize,
    /// Far-future tier: entries at or beyond the wheel span.
    overflow: BinaryHeap<Reverse<Entry>>,
    /// The drained current bucket, sorted ascending; covers times below
    /// `wheel_time`. Consumed from `active_pos`; same-slice pushes are
    /// merge-inserted behind the consumption point.
    active: Vec<Entry>,
    active_pos: usize,
    len: usize,
}

impl Default for CalendarQueue {
    fn default() -> Self {
        CalendarQueue::new()
    }
}

impl CalendarQueue {
    /// An empty queue with the default geometry.
    pub fn new() -> Self {
        CalendarQueue::with_geometry(DEFAULT_BUCKET_WIDTH_US, DEFAULT_N_BUCKETS)
    }

    /// An empty queue with explicit bucket width (µs) and count (a power
    /// of two). Geometry affects only performance, never pop order.
    pub fn with_geometry(width_us: u64, n_buckets: usize) -> Self {
        assert!(width_us > 0, "bucket width must be positive");
        assert!(
            n_buckets.is_power_of_two(),
            "bucket count must be a power of two"
        );
        CalendarQueue {
            buckets: (0..n_buckets).map(|_| Vec::new()).collect(),
            width: width_us,
            mask: n_buckets - 1,
            wheel_time: 0,
            cursor: 0,
            wheel_len: 0,
            overflow: BinaryHeap::new(),
            active: Vec::new(),
            active_pos: 0,
            len: 0,
        }
    }

    /// Number of queued entries (canceled-but-unpopped ones included).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The wheel span in µs: entries this far past the cursor go to the
    /// overflow heap.
    #[inline]
    fn span(&self) -> u64 {
        self.width * (self.mask as u64 + 1)
    }

    /// Queues an entry.
    pub fn push(&mut self, at: SimTime, seq: u64, id: usize) {
        let t = at.micros();
        self.len += 1;
        if t < self.wheel_time {
            // The entry's slice was already drained into `active`: merge it
            // in behind the consumption point. The engine only pushes
            // times ≥ the instant it is currently draining, so the slot
            // found is never before `active_pos`.
            let entry = (t, seq, id);
            let pos = self.active.partition_point(|e| *e < entry);
            debug_assert!(pos >= self.active_pos, "push into the drained past");
            self.active.insert(pos, entry);
        } else if t - self.wheel_time < self.span() {
            let k = ((t - self.wheel_time) / self.width) as usize;
            let b = (self.cursor + k) & self.mask;
            self.buckets[b].push((t, seq, id));
            self.wheel_len += 1;
        } else {
            self.overflow.push(Reverse((t, seq, id)));
        }
    }

    /// Removes and returns the smallest `(time, seq)` entry.
    pub fn pop(&mut self) -> Option<(SimTime, u64, usize)> {
        loop {
            if self.active_pos < self.active.len() {
                let (t, seq, id) = self.active[self.active_pos];
                self.active_pos += 1;
                self.len -= 1;
                return Some((SimTime::from_micros(t), seq, id));
            }
            if self.len == 0 {
                return None;
            }
            self.active.clear();
            self.active_pos = 0;
            if self.wheel_len == 0 {
                // Everything lives in the overflow tier: jump the wheel
                // straight to the earliest entry's slice instead of
                // stepping through empty buckets.
                let &Reverse((t, _, _)) = self.overflow.peek().expect("len > 0");
                let skip = (t - self.wheel_time) / self.width;
                self.wheel_time += skip * self.width;
                self.cursor = (self.cursor + skip as usize) & self.mask;
            }
            // Migrate overflow entries due in the cursor's slice, then
            // drain that bucket sorted.
            let bucket_end = self.wheel_time + self.width;
            while let Some(&Reverse((t, _, _))) = self.overflow.peek() {
                if t >= bucket_end {
                    break;
                }
                let Reverse(e) = self.overflow.pop().expect("peeked");
                self.buckets[self.cursor].push(e);
                self.wheel_len += 1;
            }
            if !self.buckets[self.cursor].is_empty() {
                std::mem::swap(&mut self.active, &mut self.buckets[self.cursor]);
                self.wheel_len -= self.active.len();
                self.active.sort_unstable();
            }
            self.cursor = (self.cursor + 1) & self.mask;
            self.wheel_time = bucket_end;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The reference: a plain binary heap over the same tuples.
    #[derive(Default)]
    struct HeapRef(BinaryHeap<Reverse<Entry>>);
    impl HeapRef {
        fn push(&mut self, at: u64, seq: u64, id: usize) {
            self.0.push(Reverse((at, seq, id)));
        }
        fn pop(&mut self) -> Option<Entry> {
            self.0.pop().map(|Reverse(e)| e)
        }
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = CalendarQueue::with_geometry(100, 8);
        // Same time, different seqs; spread times; far-future overflow.
        q.push(SimTime::from_micros(500), 2, 10);
        q.push(SimTime::from_micros(500), 1, 11);
        q.push(SimTime::from_micros(50), 3, 12);
        q.push(SimTime::from_micros(1_000_000), 4, 13); // overflow tier
        q.push(SimTime::from_micros(799), 5, 14);
        assert_eq!(q.len(), 5);
        let got: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(
            got,
            vec![
                (SimTime::from_micros(50), 3, 12),
                (SimTime::from_micros(500), 1, 11),
                (SimTime::from_micros(500), 2, 10),
                (SimTime::from_micros(799), 5, 14),
                (SimTime::from_micros(1_000_000), 4, 13),
            ]
        );
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_at_current_instant() {
        // Pushing at the instant currently being drained (the streaming-
        // arrival pattern) must order by seq against pending entries.
        let mut q = CalendarQueue::with_geometry(1_000, 8);
        q.push(SimTime::from_micros(10), 0, 0);
        q.push(SimTime::from_micros(10), 5, 1);
        assert_eq!(q.pop(), Some((SimTime::from_micros(10), 0, 0)));
        // Arrives "now" with a seq between the two pending ones.
        q.push(SimTime::from_micros(10), 3, 2);
        assert_eq!(q.pop(), Some((SimTime::from_micros(10), 3, 2)));
        assert_eq!(q.pop(), Some((SimTime::from_micros(10), 5, 1)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn far_future_jump_skips_empty_buckets() {
        let mut q = CalendarQueue::with_geometry(10, 4); // 40 µs span
        q.push(SimTime::from_secs(100), 1, 0);
        q.push(SimTime::from_secs(300), 2, 1);
        assert_eq!(q.pop(), Some((SimTime::from_secs(100), 1, 0)));
        q.push(SimTime::from_secs(200), 3, 2);
        assert_eq!(q.pop(), Some((SimTime::from_secs(200), 3, 2)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(300), 2, 1)));
    }

    /// One scripted operation against both queues, decoded from a raw
    /// `(selector, delta)` pair (the vendored proptest shim has no
    /// `prop_oneof`).
    #[derive(Debug, Clone)]
    enum Op {
        /// Push at `last popped time + delta` with the next seq.
        Push {
            delta_us: u64,
        },
        /// Push with an out-of-line (reserved-block) seq, as the engine
        /// does for streaming arrivals.
        PushReserved {
            delta_us: u64,
        },
        Pop,
        /// Cancel the most recently pushed id (engine-style: mark a side
        /// table; the entry still pops and is skipped).
        CancelLast,
    }

    fn decode_op(selector: u8, delta: u64) -> Op {
        match selector % 6 {
            // Near-future pushes (same-slice ties are common)…
            0 => Op::Push {
                delta_us: delta % 5_000,
            },
            // …far-future pushes that exercise the overflow tier…
            1 => Op::Push {
                delta_us: delta % 5_000_000,
            },
            // …and reserved-seq pushes (streamed arrivals).
            2 => Op::PushReserved {
                delta_us: delta % 50_000,
            },
            3 | 4 => Op::Pop,
            _ => Op::CancelLast,
        }
    }

    proptest! {
        /// Arbitrary push/pop/cancel sequences (same-time ties, reserved
        /// low seqs, mid-run cancels, far-future overflow) pop identically
        /// from the calendar queue and the reference heap.
        #[test]
        fn matches_binary_heap_reference(
            raw_ops in proptest::collection::vec((0u8..255, 0u64..u64::MAX), 1..200),
            width_exp in 0u32..12,
            buckets_exp in 0u32..8,
        ) {
            let ops: Vec<Op> = raw_ops
                .into_iter()
                .map(|(sel, delta)| decode_op(sel, delta))
                .collect();
            let mut cal = CalendarQueue::with_geometry(1 << width_exp, 1 << buckets_exp);
            let mut heap = HeapRef::default();
            let mut now = 0u64;          // monotone drain instant
            let mut seq = 1u64 << 32;    // runtime seq space
            let mut reserved = 0u64;     // arrival-style low seq space
            let mut last_popped: Option<(u64, u64)> = None;
            let mut canceled = std::collections::HashSet::new();
            let mut last_pushed: Option<usize> = None;
            let mut next_id = 0usize;
            for op in ops {
                match op {
                    Op::Push { delta_us } => {
                        let t = now + delta_us;
                        cal.push(SimTime::from_micros(t), seq, next_id);
                        heap.push(t, seq, next_id);
                        last_pushed = Some(next_id);
                        seq += 1;
                        next_id += 1;
                    }
                    Op::PushReserved { delta_us } => {
                        // The engine guarantees a reserved-seq push still
                        // orders after everything already popped (arrival
                        // k+1 is pushed while arrival k executes, with a
                        // higher reserved seq and a later-or-equal time);
                        // only exercise pushes honoring that contract.
                        let t = now + delta_us;
                        if last_popped.is_none_or(|k| (t, reserved) > k) {
                            cal.push(SimTime::from_micros(t), reserved, next_id);
                            heap.push(t, reserved, next_id);
                            last_pushed = Some(next_id);
                            reserved += 1;
                            next_id += 1;
                        }
                    }
                    Op::Pop => {
                        let got = cal.pop();
                        let want = heap.pop();
                        prop_assert_eq!(
                            got.map(|(t, s, i)| (t.micros(), s, i)),
                            want
                        );
                        if let Some((t, s, id)) = got {
                            now = now.max(t.micros());
                            last_popped = Some((t.micros(), s));
                            // Engine-style skip of canceled entries.
                            let _ = canceled.remove(&id);
                        }
                    }
                    Op::CancelLast => {
                        if let Some(id) = last_pushed {
                            canceled.insert(id);
                        }
                    }
                }
                prop_assert_eq!(cal.len(), heap.0.len());
            }
            // Drain both to the end.
            loop {
                let got = cal.pop().map(|(t, s, i)| (t.micros(), s, i));
                let want = heap.pop();
                prop_assert_eq!(got, want);
                if got.is_none() {
                    break;
                }
            }
        }
    }
}
