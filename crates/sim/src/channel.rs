//! Per-channel balance state with in-flight (HTLC-locked) funds.

use spider_types::{Amount, Direction, SignedAmount};

/// The mutable state of one bidirectional payment channel.
///
/// `available[d]` is what the sender in direction `d` can still spend;
/// `inflight[d]` is locked under hash locks for units traveling in
/// direction `d` (unavailable to *both* parties until the key arrives or
/// the unit is canceled).
///
/// Invariant (fund conservation): `available[0] + available[1] +
/// inflight[0] + inflight[1] == capacity` at all times.
///
/// A channel may be **closed** by topology churn: its balances freeze in
/// place (still conserved, still refundable for in-flight unwinding) but
/// [`ChannelState::available`] reports zero and [`ChannelState::lock`]
/// refuses new locks, so no router or engine path can spend through it
/// until it reopens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelState {
    capacity: Amount,
    available: [Amount; 2],
    inflight: [Amount; 2],
    closed: bool,
}

impl ChannelState {
    /// Creates a channel with `capacity` total funds split equally between
    /// the two directions (the paper's §6.2 initialization: "equally split
    /// between the two parties"). Odd drops favour the forward side.
    pub fn split_equally(capacity: Amount) -> Self {
        let half = capacity / 2;
        ChannelState {
            capacity,
            available: [capacity - half, half],
            inflight: [Amount::ZERO, Amount::ZERO],
            closed: false,
        }
    }

    /// Creates a channel with explicit initial balances.
    pub fn with_balances(fwd: Amount, bwd: Amount) -> Self {
        ChannelState {
            capacity: fwd + bwd,
            available: [fwd, bwd],
            inflight: [Amount::ZERO, Amount::ZERO],
            closed: false,
        }
    }

    /// Total escrowed funds.
    pub fn capacity(&self) -> Amount {
        self.capacity
    }

    /// Funds the sender in `dir` can spend right now — zero while the
    /// channel is closed (the frozen balance is invisible to routing).
    pub fn available(&self, dir: Direction) -> Amount {
        if self.closed {
            Amount::ZERO
        } else {
            self.available[dir.index()]
        }
    }

    /// The frozen-or-not balance on the `dir` side, ignoring liveness
    /// (what the parties would take on-chain if they settled now).
    pub fn balance(&self, dir: Direction) -> Amount {
        self.available[dir.index()]
    }

    /// True while the channel is closed by topology churn.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Closes the channel: balances freeze, locks are refused. The caller
    /// (the engine) fails back in-flight units separately.
    pub fn close(&mut self) {
        self.closed = true;
    }

    /// Reopens a closed channel with the balances it froze with.
    pub fn reopen(&mut self) {
        self.closed = false;
    }

    /// Splices the channel toward `target` total capacity. Growth deposits
    /// the delta split across both sides (odd drop to the forward side);
    /// shrinkage withdraws from available balances only — forward side
    /// first, then backward — never touching in-flight funds. Returns
    /// `(deposited, withdrawn)`; the realized capacity change may fall
    /// short of the target when too much value is in flight.
    pub fn resize(&mut self, target: Amount) -> (Amount, Amount) {
        if target >= self.capacity {
            let delta = target - self.capacity;
            let half = delta / 2;
            self.available[0] += delta - half;
            self.available[1] += half;
            self.capacity += delta;
            self.assert_conservation();
            (delta, Amount::ZERO)
        } else {
            let mut want = self.capacity - target;
            let mut withdrawn = Amount::ZERO;
            for side in 0..2 {
                let take = self.available[side].min(want);
                self.available[side] -= take;
                withdrawn += take;
                want -= take;
            }
            self.capacity -= withdrawn;
            self.assert_conservation();
            (Amount::ZERO, withdrawn)
        }
    }

    /// Funds currently locked for units traveling in `dir`.
    pub fn inflight(&self, dir: Direction) -> Amount {
        self.inflight[dir.index()]
    }

    /// Signed imbalance seen from the forward direction:
    /// `available(fwd) − available(bwd)`. Zero means perfectly balanced.
    pub fn imbalance(&self) -> SignedAmount {
        self.available[0].signed() - self.available[1].signed()
    }

    /// Locks `amount` for a unit traveling in `dir`. Returns `false`
    /// (leaving state unchanged) when the sender lacks available funds.
    #[must_use]
    pub fn lock(&mut self, dir: Direction, amount: Amount) -> bool {
        if self.closed {
            return false;
        }
        let d = dir.index();
        match self.available[d].checked_sub(amount) {
            Some(rest) => {
                self.available[d] = rest;
                self.inflight[d] += amount;
                self.assert_conservation();
                true
            }
            None => false,
        }
    }

    /// Settles a previously locked unit: the funds move to the receiving
    /// party (who can then spend them in the opposite direction).
    /// Panics if `amount` exceeds the in-flight total (a bookkeeping bug).
    pub fn settle(&mut self, dir: Direction, amount: Amount) {
        let d = dir.index();
        self.inflight[d] -= amount;
        self.available[dir.reverse().index()] += amount;
        self.assert_conservation();
    }

    /// Cancels a previously locked unit: funds return to the sender.
    pub fn refund(&mut self, dir: Direction, amount: Amount) {
        let d = dir.index();
        self.inflight[d] -= amount;
        self.available[d] += amount;
        self.assert_conservation();
    }

    /// Deposits `amount` of new funds on the `dir` side (an on-chain
    /// rebalancing transaction). Increases total capacity.
    pub fn deposit(&mut self, dir: Direction, amount: Amount) {
        self.available[dir.index()] += amount;
        self.capacity += amount;
        self.assert_conservation();
    }

    /// Sum of available and in-flight funds; must equal capacity.
    pub fn total(&self) -> Amount {
        self.available[0] + self.available[1] + self.inflight[0] + self.inflight[1]
    }

    #[inline]
    fn assert_conservation(&self) {
        debug_assert_eq!(self.total(), self.capacity, "channel funds not conserved");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Direction::{Backward, Forward};

    fn xrp(x: u64) -> Amount {
        Amount::from_xrp(x)
    }

    #[test]
    fn split_equally_conserves() {
        let c = ChannelState::split_equally(xrp(30_000));
        assert_eq!(c.available(Forward), xrp(15_000));
        assert_eq!(c.available(Backward), xrp(15_000));
        assert_eq!(c.total(), c.capacity());
        assert_eq!(c.imbalance(), SignedAmount::ZERO);
    }

    #[test]
    fn odd_drop_goes_forward() {
        let c = ChannelState::split_equally(Amount::from_drops(5));
        assert_eq!(c.available(Forward), Amount::from_drops(3));
        assert_eq!(c.available(Backward), Amount::from_drops(2));
        assert_eq!(c.total(), c.capacity());
    }

    #[test]
    fn lock_settle_moves_funds_across() {
        let mut c = ChannelState::with_balances(xrp(10), xrp(5));
        assert!(c.lock(Forward, xrp(4)));
        assert_eq!(c.available(Forward), xrp(6));
        assert_eq!(c.inflight(Forward), xrp(4));
        c.settle(Forward, xrp(4));
        assert_eq!(c.inflight(Forward), xrp(0));
        assert_eq!(c.available(Backward), xrp(9));
        assert_eq!(c.total(), c.capacity());
    }

    #[test]
    fn lock_refund_restores() {
        let mut c = ChannelState::with_balances(xrp(10), xrp(5));
        assert!(c.lock(Backward, xrp(5)));
        assert_eq!(c.available(Backward), xrp(0));
        c.refund(Backward, xrp(5));
        assert_eq!(c.available(Backward), xrp(5));
        assert_eq!(c.inflight(Backward), xrp(0));
        assert_eq!(c.total(), c.capacity());
    }

    #[test]
    fn lock_fails_without_balance_and_leaves_state() {
        let mut c = ChannelState::with_balances(xrp(3), xrp(5));
        let before = c.clone();
        assert!(!c.lock(Forward, xrp(4)));
        assert_eq!(c, before);
        // Exactly the full balance is lockable.
        assert!(c.lock(Forward, xrp(3)));
        assert_eq!(c.available(Forward), xrp(0));
    }

    #[test]
    fn inflight_funds_unusable_by_either_side() {
        let mut c = ChannelState::with_balances(xrp(4), xrp(0));
        assert!(c.lock(Forward, xrp(4)));
        // Sender has nothing left; receiver hasn't received yet.
        assert!(!c.lock(Forward, Amount::DROP));
        assert!(!c.lock(Backward, Amount::DROP));
    }

    #[test]
    fn imbalance_sign() {
        let mut c = ChannelState::with_balances(xrp(10), xrp(2));
        assert_eq!(c.imbalance(), SignedAmount::from_drops(8_000_000));
        assert!(c.lock(Forward, xrp(9)));
        c.settle(Forward, xrp(9));
        // Now forward side has 1, backward 11.
        assert_eq!(c.imbalance(), SignedAmount::from_drops(-10_000_000));
    }

    #[test]
    fn deposit_grows_capacity() {
        let mut c = ChannelState::with_balances(xrp(1), xrp(1));
        c.deposit(Forward, xrp(5));
        assert_eq!(c.capacity(), xrp(7));
        assert_eq!(c.available(Forward), xrp(6));
        assert_eq!(c.total(), c.capacity());
    }

    #[test]
    fn close_freezes_and_reopen_restores() {
        let mut c = ChannelState::with_balances(xrp(6), xrp(4));
        assert!(c.lock(Forward, xrp(2)));
        c.close();
        assert!(c.is_closed());
        assert_eq!(c.available(Forward), Amount::ZERO);
        assert_eq!(c.available(Backward), Amount::ZERO);
        assert_eq!(c.balance(Forward), xrp(4), "frozen balance still visible");
        assert!(
            !c.lock(Forward, Amount::DROP),
            "closed channels refuse locks"
        );
        // In-flight funds still unwind while closed.
        c.refund(Forward, xrp(2));
        assert_eq!(c.total(), c.capacity());
        c.reopen();
        assert_eq!(c.available(Forward), xrp(6));
        assert_eq!(c.available(Backward), xrp(4));
    }

    #[test]
    fn resize_grows_and_shrinks_conserving() {
        let mut c = ChannelState::with_balances(xrp(5), xrp(5));
        let (dep, wd) = c.resize(xrp(13));
        assert_eq!((dep, wd), (xrp(3), Amount::ZERO));
        assert_eq!(c.capacity(), xrp(13));
        assert_eq!(c.available(Forward), Amount::from_xrp_f64(6.5));
        assert_eq!(c.available(Backward), Amount::from_xrp_f64(6.5));
        let (dep, wd) = c.resize(xrp(4));
        assert_eq!((dep, wd), (Amount::ZERO, xrp(9)));
        assert_eq!(c.capacity(), xrp(4));
        assert_eq!(c.total(), c.capacity());
    }

    #[test]
    fn resize_never_claws_back_inflight() {
        let mut c = ChannelState::with_balances(xrp(5), xrp(5));
        assert!(c.lock(Forward, xrp(5)));
        assert!(c.lock(Backward, xrp(3)));
        // Only 2 XRP is available; a shrink to 1 XRP can withdraw at most
        // that, leaving capacity = inflight 8 XRP.
        let (_, wd) = c.resize(xrp(1));
        assert_eq!(wd, xrp(2));
        assert_eq!(c.capacity(), xrp(8));
        assert_eq!(c.total(), c.capacity());
        c.settle(Forward, xrp(5));
        c.refund(Backward, xrp(3));
        assert_eq!(c.total(), c.capacity());
    }

    #[test]
    #[should_panic]
    fn settle_more_than_inflight_panics() {
        let mut c = ChannelState::with_balances(xrp(5), xrp(5));
        assert!(c.lock(Forward, xrp(2)));
        c.settle(Forward, xrp(3));
    }

    #[test]
    fn interleaved_units_many_directions() {
        let mut c = ChannelState::split_equally(xrp(20));
        assert!(c.lock(Forward, xrp(6)));
        assert!(c.lock(Backward, xrp(10)));
        assert!(c.lock(Forward, xrp(4)));
        assert!(!c.lock(Forward, Amount::DROP));
        c.settle(Forward, xrp(6));
        c.refund(Backward, xrp(10));
        c.settle(Forward, xrp(4));
        assert_eq!(c.available(Forward), xrp(0));
        assert_eq!(c.available(Backward), xrp(20));
        assert_eq!(c.total(), c.capacity());
    }
}
