//! Transaction workload generation (§6.1).
//!
//! "The transactions were synthetically generated with the sizes sampled
//! from Ripple data after pruning out the largest 10 %. … The sender for
//! each transaction was sampled from the set of nodes using an exponential
//! distribution while the receiver was sampled uniformly at random."

use serde::{Deserialize, Serialize};
use spider_types::distr::{Distribution, ExponentialRank, LogNormal, PoissonProcess};
use spider_types::{Amount, DetRng, NodeId, SimTime};

/// One transaction to inject: at `time`, `src` pays `dst` `amount`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TxnSpec {
    /// Arrival instant.
    pub time: SimTime,
    /// Paying node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Payment value.
    pub amount: Amount,
}

/// Transaction-size distributions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SizeDistribution {
    /// Every transaction has the same size.
    Constant {
        /// The fixed size in XRP.
        xrp: f64,
    },
    /// Log-normal with explicit mean/median (XRP), truncated at `cap_xrp`
    /// by resampling.
    LogNormal {
        /// Target mean in XRP.
        mean_xrp: f64,
        /// Target median in XRP.
        median_xrp: f64,
        /// Resample above this value (paper prunes the top of the trace).
        cap_xrp: f64,
    },
    /// The ISP workload of §6.1: Ripple sizes with the largest 10 % pruned
    /// — mean 170 XRP, largest 1,780 XRP.
    RippleIsp,
    /// The Ripple-subgraph workload of §6.1: mean 345 XRP, largest 2,892.
    RippleFull,
}

impl SizeDistribution {
    /// Draws one size.
    pub fn sample(&self, rng: &mut DetRng) -> Amount {
        match *self {
            SizeDistribution::Constant { xrp } => Amount::from_xrp_f64(xrp),
            SizeDistribution::LogNormal {
                mean_xrp,
                median_xrp,
                cap_xrp,
            } => sample_lognormal_capped(mean_xrp, median_xrp, cap_xrp, rng),
            // Medians chosen so the fitted log-normal reproduces the
            // reported means with a realistic right skew; caps match the
            // reported maxima.
            SizeDistribution::RippleIsp => sample_lognormal_capped(170.0, 100.0, 1_780.0, rng),
            SizeDistribution::RippleFull => sample_lognormal_capped(345.0, 180.0, 2_892.0, rng),
        }
    }

    /// Approximate mean (before truncation).
    pub fn nominal_mean_xrp(&self) -> f64 {
        match *self {
            SizeDistribution::Constant { xrp } => xrp,
            SizeDistribution::LogNormal { mean_xrp, .. } => mean_xrp,
            SizeDistribution::RippleIsp => 170.0,
            SizeDistribution::RippleFull => 345.0,
        }
    }
}

fn sample_lognormal_capped(mean: f64, median: f64, cap: f64, rng: &mut DetRng) -> Amount {
    let d = LogNormal::with_mean_median(mean, median);
    for _ in 0..64 {
        let x = d.sample(rng);
        if x <= cap {
            // Floor at one drop so zero-value transactions never occur.
            return Amount::from_xrp_f64(x).max(Amount::DROP);
        }
    }
    Amount::from_xrp_f64(cap)
}

/// Workload parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Total number of transactions to generate.
    pub count: usize,
    /// Aggregate arrival rate (transactions per second, Poisson).
    pub rate_per_sec: f64,
    /// Size distribution.
    pub size: SizeDistribution,
    /// Skew of the exponential sender sampler (smaller = more skewed;
    /// the paper does not report its value — 4.0 concentrates ~90 % of
    /// sends on the top half of nodes, matching the qualitative claim).
    pub sender_skew_scale: f64,
}

impl WorkloadConfig {
    /// The ISP-topology workload of §6.1: 200,000 transactions over ~200 s.
    /// The sender skew is calibrated so the implied demand matrix has a
    /// circulation fraction of ≈ 0.52 (the paper's Spider (LP) success
    /// volume "corresponds precisely to the circulation component": 52 %).
    pub fn isp_paper() -> Self {
        WorkloadConfig {
            count: 200_000,
            rate_per_sec: 1_000.0,
            size: SizeDistribution::RippleIsp,
            sender_skew_scale: 8.0,
        }
    }

    /// The Ripple-subgraph workload of §6.1: 75,000 transactions over ~85 s
    /// on the 3,774-node graph. Skew calibrated to a circulation fraction
    /// of ≈ 0.22 (the paper's Ripple-side Spider (LP) volume).
    pub fn ripple_paper() -> Self {
        WorkloadConfig {
            count: 75_000,
            rate_per_sec: 75_000.0 / 85.0,
            size: SizeDistribution::RippleFull,
            sender_skew_scale: 3_774.0 / 8.0,
        }
    }

    /// A miniature workload for tests and examples.
    pub fn small(count: usize, rate_per_sec: f64) -> Self {
        WorkloadConfig {
            count,
            rate_per_sec,
            size: SizeDistribution::Constant { xrp: 10.0 },
            sender_skew_scale: 4.0,
        }
    }
}

/// A generated transaction sequence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Workload {
    /// Transactions ordered by arrival time.
    pub txns: Vec<TxnSpec>,
}

impl Workload {
    /// Generates a workload over `n_nodes` nodes. Senders follow an
    /// exponential rank distribution over a seed-fixed node permutation;
    /// receivers are uniform (and distinct from the sender).
    pub fn generate(n_nodes: usize, cfg: &WorkloadConfig, rng: &mut DetRng) -> Workload {
        let mut stream = StreamingWorkload::new(n_nodes, cfg.clone(), rng.clone());
        let txns: Vec<TxnSpec> = std::iter::from_fn(|| stream.next_txn()).collect();
        *rng = stream.into_rng();
        Workload { txns }
    }

    /// The distinct `(src, dst)` pairs of arrivals at or before `horizon`
    /// (every arrival when `None`), in first-arrival order — the list
    /// [`Simulation::run`](crate::Simulation::run) hands to
    /// [`Router::prewarm`](crate::Router::prewarm), shared with the
    /// pathfill benchmark so both measure the same fill.
    pub fn distinct_pairs(&self, horizon: Option<SimTime>) -> Vec<(NodeId, NodeId)> {
        let mut seen = std::collections::HashSet::new();
        self.txns
            .iter()
            .filter(|t| horizon.is_none_or(|h| t.time <= h))
            .map(|t| (t.src, t.dst))
            .filter(|p| seen.insert(*p))
            .collect()
    }

    /// Total value of all transactions.
    pub fn total_volume(&self) -> Amount {
        self.txns.iter().map(|t| t.amount).sum()
    }

    /// Duration spanned by the arrivals.
    pub fn duration(&self) -> SimTime {
        self.txns.last().map(|t| t.time).unwrap_or(SimTime::ZERO)
    }

    /// The long-run demand matrix implied by this workload (XRP per
    /// second), for feeding the fluid LP exactly as Spider (LP) does with
    /// "an estimate of the demand matrix".
    pub fn demand_matrix(&self, n_nodes: usize) -> spider_paygraph_compat::PaymentGraphLike {
        let secs = self.duration().as_secs_f64().max(1e-9);
        let mut rates = std::collections::BTreeMap::new();
        for t in &self.txns {
            *rates.entry((t.src, t.dst)).or_insert(0.0) += t.amount.as_xrp();
        }
        spider_paygraph_compat::PaymentGraphLike {
            n_nodes,
            rates: rates
                .into_iter()
                .map(|((s, d), v)| (s, d, v / secs))
                .collect(),
        }
    }
}

/// A lazily generated transaction stream: the same arrival process as
/// [`Workload::generate`] (bit-identical draws from the same RNG state),
/// but yielding one [`TxnSpec`] at a time instead of materializing the
/// whole sequence.
///
/// This is what lets the engine run the paper's 200 s horizons with a
/// calendar bounded by *in-flight* work: arrivals are merged into the
/// event queue as they become due, never pre-seeded en masse. Cloning the
/// stream clones its RNG state, so a pristine clone can be re-run (e.g.
/// to enumerate the distinct pairs for router prewarm) without disturbing
/// the arrival sequence.
#[derive(Debug, Clone)]
pub struct StreamingWorkload {
    n_nodes: usize,
    cfg: WorkloadConfig,
    rng: DetRng,
    sender: ExponentialRank,
    rank_to_node: Vec<usize>,
    poisson: PoissonProcess,
    produced: usize,
}

impl StreamingWorkload {
    /// A stream that will yield exactly the transactions
    /// `Workload::generate(n_nodes, &cfg, &mut rng)` would produce.
    pub fn new(n_nodes: usize, cfg: WorkloadConfig, mut rng: DetRng) -> Self {
        assert!(n_nodes >= 2, "need at least two nodes");
        assert!(
            cfg.count > 0 && cfg.rate_per_sec > 0.0,
            "invalid workload config"
        );
        let sender = ExponentialRank::new(n_nodes, cfg.sender_skew_scale);
        let mut rank_to_node: Vec<usize> = (0..n_nodes).collect();
        rng.shuffle(&mut rank_to_node);
        let poisson = PoissonProcess::new(cfg.rate_per_sec);
        StreamingWorkload {
            n_nodes,
            cfg,
            rng,
            sender,
            rank_to_node,
            poisson,
            produced: 0,
        }
    }

    /// The next transaction, or `None` once `cfg.count` have been drawn.
    /// Arrival times are non-decreasing (a Poisson process).
    pub fn next_txn(&mut self) -> Option<TxnSpec> {
        if self.produced >= self.cfg.count {
            return None;
        }
        self.produced += 1;
        let t = self.poisson.next_arrival(&mut self.rng);
        let src = self.rank_to_node[self.sender.sample_rank(&mut self.rng)];
        let mut dst = self.rng.index(self.n_nodes);
        while dst == src {
            dst = self.rng.index(self.n_nodes);
        }
        Some(TxnSpec {
            time: SimTime::from_secs_f64(t),
            src: NodeId::from_index(src),
            dst: NodeId::from_index(dst),
            amount: self.cfg.size.sample(&mut self.rng),
        })
    }

    /// Total transactions this stream will yield.
    pub fn count(&self) -> usize {
        self.cfg.count
    }

    /// The distinct `(src, dst)` pairs of arrivals at or before `horizon`,
    /// in first-arrival order, computed by running a **clone** of the
    /// stream (the stream itself is not advanced). O(pairs) memory.
    pub fn distinct_pairs(&self, horizon: Option<SimTime>) -> Vec<(NodeId, NodeId)> {
        let mut probe = self.clone();
        let mut seen = std::collections::HashSet::new();
        let mut pairs = Vec::new();
        while let Some(t) = probe.next_txn() {
            if horizon.is_some_and(|h| t.time > h) {
                break; // Poisson arrivals are non-decreasing
            }
            if seen.insert((t.src, t.dst)) {
                pairs.push((t.src, t.dst));
            }
        }
        pairs
    }

    /// Consumes the stream, returning the RNG in its current state (what
    /// `Workload::generate`'s `&mut DetRng` contract needs).
    pub(crate) fn into_rng(self) -> DetRng {
        self.rng
    }
}

/// Where a simulation's arrivals come from: a pre-materialized list or a
/// lazy stream. [`crate::Simulation::new`] accepts either through `Into`,
/// so existing `Workload` call sites are unchanged.
#[derive(Debug, Clone)]
pub enum ArrivalSource {
    /// Every arrival materialized up front (tests, replayed traces).
    Fixed(Workload),
    /// Arrivals drawn lazily from the generator.
    Streaming(StreamingWorkload),
}

impl From<Workload> for ArrivalSource {
    fn from(w: Workload) -> Self {
        ArrivalSource::Fixed(w)
    }
}

impl From<StreamingWorkload> for ArrivalSource {
    fn from(s: StreamingWorkload) -> Self {
        ArrivalSource::Streaming(s)
    }
}

impl ArrivalSource {
    /// The distinct in-horizon `(src, dst)` pairs, first-arrival order
    /// (see [`Workload::distinct_pairs`]). Must be taken before any
    /// arrival is consumed.
    pub fn distinct_pairs(&self, horizon: Option<SimTime>) -> Vec<(NodeId, NodeId)> {
        match self {
            ArrivalSource::Fixed(w) => w.distinct_pairs(horizon),
            ArrivalSource::Streaming(s) => s.distinct_pairs(horizon),
        }
    }

    /// Total transactions the source will yield (payment-slab pre-sizing).
    pub fn count(&self) -> usize {
        match self {
            ArrivalSource::Fixed(w) => w.txns.len(),
            ArrivalSource::Streaming(s) => s.count(),
        }
    }
}

/// A dependency-free demand-matrix carrier, so `spider-sim` does not need
/// to depend on `spider-paygraph` (higher layers convert it).
pub mod spider_paygraph_compat {
    use spider_types::NodeId;

    /// Demand rates extracted from a workload: `(src, dst, xrp_per_sec)`.
    #[derive(Debug, Clone, PartialEq)]
    pub struct PaymentGraphLike {
        /// Number of nodes in the network.
        pub n_nodes: usize,
        /// Positive demand rates.
        pub rates: Vec<(NodeId, NodeId, f64)>,
    }

    impl PaymentGraphLike {
        /// Total demand rate.
        pub fn total(&self) -> f64 {
            self.rates.iter().map(|(_, _, r)| r).sum()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = WorkloadConfig::small(500, 100.0);
        let w1 = Workload::generate(10, &cfg, &mut DetRng::new(3));
        let w2 = Workload::generate(10, &cfg, &mut DetRng::new(3));
        assert_eq!(w1, w2);
        let w3 = Workload::generate(10, &cfg, &mut DetRng::new(4));
        assert_ne!(w1, w3);
    }

    #[test]
    fn streaming_matches_materialized_generation() {
        let cfg = WorkloadConfig::small(800, 200.0);
        let mut rng = DetRng::new(12);
        let w = Workload::generate(12, &cfg, &mut rng);
        let mut stream = StreamingWorkload::new(12, cfg.clone(), DetRng::new(12));
        let streamed: Vec<TxnSpec> = std::iter::from_fn(|| stream.next_txn()).collect();
        assert_eq!(w.txns, streamed, "stream must replay generate() exactly");
        // The generate() RNG write-back matches draining the stream.
        let mut rng2 = DetRng::new(12);
        let _ = Workload::generate(12, &cfg, &mut rng2);
        assert_eq!(rng.index(1 << 20), rng2.index(1 << 20));
        // distinct_pairs probes a clone: the stream itself is unmoved.
        let stream2 = StreamingWorkload::new(12, cfg.clone(), DetRng::new(12));
        let horizon = w.txns[300].time;
        assert_eq!(
            stream2.distinct_pairs(Some(horizon)),
            w.distinct_pairs(Some(horizon))
        );
        let mut stream2 = stream2;
        assert_eq!(stream2.next_txn(), Some(w.txns[0]));
    }

    #[test]
    fn arrivals_are_ordered_and_rate_matches() {
        let cfg = WorkloadConfig::small(2_000, 100.0);
        let w = Workload::generate(8, &cfg, &mut DetRng::new(5));
        assert_eq!(w.txns.len(), 2_000);
        for pair in w.txns.windows(2) {
            assert!(pair[0].time <= pair[1].time);
        }
        let dur = w.duration().as_secs_f64();
        assert!((dur - 20.0).abs() < 3.0, "duration {dur}");
    }

    #[test]
    fn senders_skewed_receivers_uniformish() {
        let cfg = WorkloadConfig::small(20_000, 1000.0);
        let w = Workload::generate(10, &cfg, &mut DetRng::new(6));
        let mut sent = [0usize; 10];
        let mut recv = [0usize; 10];
        for t in &w.txns {
            assert_ne!(t.src, t.dst);
            sent[t.src.index()] += 1;
            recv[t.dst.index()] += 1;
        }
        let max_sent = *sent.iter().max().unwrap() as f64;
        let min_sent = *sent.iter().min().unwrap() as f64;
        assert!(max_sent / min_sent.max(1.0) > 2.0, "senders not skewed");
        // Receivers within a loose uniform band.
        for r in recv {
            let f = r as f64 / 20_000.0;
            assert!((0.05..0.18).contains(&f), "receiver freq {f}");
        }
    }

    #[test]
    fn isp_sizes_match_paper_moments() {
        let mut rng = DetRng::new(7);
        let n = 50_000;
        let mut total = 0.0;
        let mut max: f64 = 0.0;
        for _ in 0..n {
            let s = SizeDistribution::RippleIsp.sample(&mut rng).as_xrp();
            total += s;
            max = max.max(s);
        }
        let mean = total / n as f64;
        // Paper: average 170 XRP, largest 1,780 XRP. Truncation pulls the
        // mean slightly below 170.
        assert!((150.0..175.0).contains(&mean), "mean {mean}");
        assert!(max <= 1_780.0 + 1e-9, "max {max}");
        assert!(max > 1_000.0, "max suspiciously small: {max}");
    }

    #[test]
    fn ripple_sizes_match_paper_moments() {
        let mut rng = DetRng::new(8);
        let n = 50_000;
        let mean = (0..n)
            .map(|_| SizeDistribution::RippleFull.sample(&mut rng).as_xrp())
            .sum::<f64>()
            / n as f64;
        assert!((300.0..350.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn constant_sizes() {
        let mut rng = DetRng::new(9);
        let s = SizeDistribution::Constant { xrp: 2.5 };
        assert_eq!(s.sample(&mut rng), Amount::from_xrp_f64(2.5));
    }

    #[test]
    fn distinct_pairs_first_arrival_order_and_horizon() {
        let cfg = WorkloadConfig::small(300, 100.0);
        let w = Workload::generate(6, &cfg, &mut DetRng::new(2));
        let all = w.distinct_pairs(None);
        // First-seen order, no duplicates.
        let mut seen = std::collections::HashSet::new();
        for p in &all {
            assert!(seen.insert(*p), "duplicate pair {p:?}");
        }
        assert_eq!(all[0], (w.txns[0].src, w.txns[0].dst));
        // A horizon cutting the workload keeps a prefix-subset.
        let cut = w.txns[100].time;
        let early = w.distinct_pairs(Some(cut));
        assert!(early.len() <= all.len());
        assert_eq!(early, all[..early.len()], "horizon keeps first-seen prefix");
    }

    #[test]
    fn demand_matrix_rates_scale_with_volume() {
        let cfg = WorkloadConfig::small(5_000, 500.0);
        let w = Workload::generate(6, &cfg, &mut DetRng::new(10));
        let dm = w.demand_matrix(6);
        let total_rate = dm.total();
        let expected = w.total_volume().as_xrp() / w.duration().as_secs_f64();
        assert!((total_rate - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn paper_configs_have_expected_scale() {
        let isp = WorkloadConfig::isp_paper();
        assert_eq!(isp.count, 200_000);
        assert!((isp.count as f64 / isp.rate_per_sec - 200.0).abs() < 1.0);
        let ripple = WorkloadConfig::ripple_paper();
        assert_eq!(ripple.count, 75_000);
        assert!((ripple.count as f64 / ripple.rate_per_sec - 85.0).abs() < 1.0);
    }
}
