//! # spider-faults
//!
//! Deterministic transport-fault injection for the Spider reproduction:
//! per-channel message/ack loss, latency jitter and delay spikes, silently
//! stuck units (a hop holds a unit until the sender's hop timeout fires),
//! and node crash/recovery windows — all derived from a [`DetRng`] fork so
//! the same experiment seed always produces the same fault sequence.
//!
//! The paper's evaluation assumes reliable links; this crate opens the
//! loss axis the same way `spider-dynamics` opened churn. A [`FaultPlan`]
//! is generated once from a [`FaultConfig`] (mirroring
//! `dynamics::ChurnSchedule::generate`) and installed into the engine
//! (`spider_sim::Simulation::set_fault_plan`); the engine then draws
//! per-unit outcomes from the plan's own runtime stream, schedules
//! [`FaultEvent`] crash/recover toggles on the calendar, and arms
//! `EventKind::HopTimeout` timers that refund every locked upstream hop
//! when a unit is lost or stuck.
//!
//! Determinism contract: the fault stream is independent of the workload
//! and scheme streams (labeled forks), and **no plan installed means no
//! draw ever happens** — zero-fault configs stay bit-identical to the
//! fault-unaware engine.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize};
use spider_topology::Topology;
use spider_types::distr::{Distribution, Exponential};
use spider_types::{DetRng, NodeId, Result, SimDuration, SimTime, SpiderError};

/// Node crash/recovery parameters (nested inside [`FaultConfig`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrashConfig {
    /// Poisson rate of node-crash events (events/s across the network).
    pub rate_per_sec: f64,
    /// Mean of the exponential delay after which a crashed node recovers.
    /// `None` = crashes are permanent for the run.
    pub recovery_mean_secs: Option<f64>,
}

impl Default for CrashConfig {
    fn default() -> Self {
        CrashConfig {
            rate_per_sec: 0.02,
            recovery_mean_secs: Some(4.0),
        }
    }
}

/// Parameters of a fault plan. Probabilities are per transaction-unit hop
/// (or per ack); rates are per simulated second over the whole network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Base probability that a unit's forwarding message is lost crossing
    /// one hop. Each channel gets its own per-channel probability drawn
    /// around this base (see [`FaultPlan::message_loss`]).
    pub message_loss_prob: f64,
    /// Probability that the acknowledgement of a delivered unit is lost on
    /// the way back to the sender (the sender's hop timeout then refunds
    /// the path even though the unit reached its destination).
    pub ack_loss_prob: f64,
    /// Probability that a hop silently holds a unit (a stuck HTLC): no
    /// message is lost, but the unit never progresses until the hop
    /// timeout cancels it.
    pub stuck_unit_prob: f64,
    /// Per-hop latency jitter, drawn uniformly from `[min, max]`
    /// milliseconds and added to the hop delay. `None` = no jitter.
    pub jitter_range_ms: Option<[f64; 2]>,
    /// Probability that a hop experiences a delay spike.
    pub spike_prob: f64,
    /// Extra delay (milliseconds) a spiked hop adds on top of jitter.
    pub spike_ms: f64,
    /// The sender-side per-hop timeout: a unit whose next forwarding event
    /// was lost or stuck is canceled (and its upstream hops refunded) this
    /// long after the fault.
    pub hop_timeout_secs: f64,
    /// Node crash/recovery windows. `None` = nodes never crash.
    pub crash: Option<CrashConfig>,
    /// Plan horizon (seconds): no crash event is generated at or beyond
    /// it.
    pub horizon_secs: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            message_loss_prob: 0.01,
            ack_loss_prob: 0.005,
            stuck_unit_prob: 0.002,
            jitter_range_ms: Some([1.0, 8.0]),
            spike_prob: 0.01,
            spike_ms: 120.0,
            hop_timeout_secs: 1.0,
            crash: Some(CrashConfig::default()),
            horizon_secs: 20.0,
        }
    }
}

impl FaultConfig {
    /// A copy with every fault probability and crash rate scaled by
    /// `intensity` — the knob the `fault_resilience` benchmark sweeps.
    /// `0.0` yields a plan that never injects anything.
    pub fn scaled(&self, intensity: f64) -> FaultConfig {
        let p = |base: f64| (base * intensity).min(1.0);
        FaultConfig {
            message_loss_prob: p(self.message_loss_prob),
            ack_loss_prob: p(self.ack_loss_prob),
            stuck_unit_prob: p(self.stuck_unit_prob),
            spike_prob: p(self.spike_prob),
            // Jitter has no probability knob; its magnitude scales.
            jitter_range_ms: self
                .jitter_range_ms
                .map(|[lo, hi]| [lo * intensity, hi * intensity]),
            crash: self.crash.as_ref().map(|c| CrashConfig {
                rate_per_sec: c.rate_per_sec * intensity,
                recovery_mean_secs: c.recovery_mean_secs,
            }),
            ..self.clone()
        }
    }

    /// Validates parameter sanity.
    pub fn validate(&self) -> Result<()> {
        let bad = |msg: &str| Err(SpiderError::InvalidConfig(msg.into()));
        let probs = [
            self.message_loss_prob,
            self.ack_loss_prob,
            self.stuck_unit_prob,
            self.spike_prob,
        ];
        if probs.iter().any(|p| !(0.0..=1.0).contains(p)) {
            return bad("fault probabilities must be in [0, 1]");
        }
        if let Some([lo, hi]) = self.jitter_range_ms {
            if !(lo >= 0.0 && hi >= lo) {
                return bad("jitter range must satisfy 0 <= min <= max");
            }
        }
        if self.spike_ms < 0.0 {
            return bad("spike delay must be non-negative");
        }
        if self.hop_timeout_secs <= 0.0 {
            return bad("hop timeout must be positive");
        }
        if let Some(crash) = &self.crash {
            if crash.rate_per_sec < 0.0 {
                return bad("crash rate must be non-negative");
            }
            if let Some(m) = crash.recovery_mean_secs {
                if m <= 0.0 {
                    return bad("crash recovery mean must be positive");
                }
            }
        }
        if self.horizon_secs <= 0.0 {
            return bad("fault horizon must be positive");
        }
        Ok(())
    }
}

/// What a scheduled fault event does when its instant arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultChange {
    /// The node stops forwarding: units arriving at it (or queued behind
    /// it) are dropped with `DropReason::NodeCrashed`.
    NodeCrash {
        /// The crashing node.
        node: NodeId,
    },
    /// The node resumes forwarding.
    NodeRecover {
        /// The recovering node.
        node: NodeId,
    },
}

/// One scheduled crash/recover toggle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// When the change happens.
    pub at: SimTime,
    /// What changes.
    pub change: FaultChange,
}

/// A generated, deterministic fault plan: the scheduled crash windows plus
/// the per-channel/per-unit draw parameters the engine consults at
/// runtime.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Per-channel message-loss probability (indexed by `ChannelId`):
    /// the configured base scaled by a deterministic per-channel factor in
    /// `[0.5, 1.5]`, so lossy and clean channels coexist in one run.
    pub message_loss: Vec<f64>,
    /// Ack-loss probability (per delivered unit).
    pub ack_loss_prob: f64,
    /// Stuck-unit probability (per hop crossing).
    pub stuck_prob: f64,
    /// Per-hop jitter range (milliseconds), if any.
    pub jitter_range_ms: Option<[f64; 2]>,
    /// Delay-spike probability (per hop crossing).
    pub spike_prob: f64,
    /// Delay-spike magnitude (milliseconds).
    pub spike_ms: f64,
    /// The sender-side per-hop timeout.
    pub hop_timeout: SimDuration,
    /// Crash/recover toggles, sorted by instant (ties keep generation
    /// order — the engine applies same-instant events in list order).
    pub events: Vec<FaultEvent>,
    /// Seed of the engine's runtime draw stream (per-unit loss/stuck/
    /// jitter decisions). Forked from the plan stream so reruns of the
    /// same plan make identical draws.
    pub runtime_seed: u64,
}

impl FaultPlan {
    /// Generates the deterministic plan for `topo` under `cfg`, drawing
    /// every random choice from `rng`. The same (topology, config, rng
    /// state) always yields the same plan.
    pub fn generate(topo: &Topology, cfg: &FaultConfig, rng: &mut DetRng) -> Result<Self> {
        cfg.validate()?;
        let n_channels = topo.channel_count();
        let n_nodes = topo.node_count();
        let horizon = cfg.horizon_secs;
        let at = |secs: f64| SimTime::from_secs_f64(secs);

        // Per-channel loss: the base probability scaled by a uniform
        // factor in [0.5, 1.5], clamped to a valid probability. A zero
        // base stays exactly zero on every channel.
        let mut loss_rng = rng.fork("loss");
        let message_loss: Vec<f64> = (0..n_channels)
            .map(|_| {
                let factor = 0.5 + loss_rng.uniform();
                (cfg.message_loss_prob * factor).min(1.0)
            })
            .collect();

        // Poisson node crashes with exponential recoveries.
        let mut events: Vec<FaultEvent> = Vec::new();
        let mut crash_rng = rng.fork("crash");
        if let Some(crash) = &cfg.crash {
            if crash.rate_per_sec > 0.0 && n_nodes > 0 {
                let gap = Exponential::new(crash.rate_per_sec);
                let mut t = gap.sample(&mut crash_rng);
                while t < horizon {
                    let node = NodeId::from_index(crash_rng.index(n_nodes));
                    events.push(FaultEvent {
                        at: at(t),
                        change: FaultChange::NodeCrash { node },
                    });
                    if let Some(mean) = crash.recovery_mean_secs {
                        let dt = Exponential::with_mean(mean).sample(&mut crash_rng);
                        if t + dt < horizon {
                            events.push(FaultEvent {
                                at: at(t + dt),
                                change: FaultChange::NodeRecover { node },
                            });
                        }
                    }
                    t += gap.sample(&mut crash_rng);
                }
            }
        }
        events.sort_by_key(|e| e.at);

        Ok(FaultPlan {
            message_loss,
            ack_loss_prob: cfg.ack_loss_prob,
            stuck_prob: cfg.stuck_unit_prob,
            jitter_range_ms: cfg.jitter_range_ms,
            spike_prob: cfg.spike_prob,
            spike_ms: cfg.spike_ms,
            hop_timeout: SimDuration::from_secs_f64(cfg.hop_timeout_secs),
            events,
            runtime_seed: rng.fork("runtime").seed(),
        })
    }

    /// True when the plan can never inject anything: no crash windows and
    /// every probabilistic knob at zero. The engine still runs its fault
    /// path for a quiet plan (draws happen on an independent stream), but
    /// `chance(0.0)` never fires, so outcomes match a fault-free run.
    pub fn is_quiet(&self) -> bool {
        self.events.is_empty()
            && self.ack_loss_prob == 0.0
            && self.stuck_prob == 0.0
            && self.spike_prob == 0.0
            && self
                .jitter_range_ms
                .is_none_or(|[lo, hi]| lo == 0.0 && hi == 0.0)
            && self.message_loss.iter().all(|&p| p == 0.0)
    }

    /// Number of crash events (`NodeCrash` toggles) in the plan.
    pub fn crash_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.change, FaultChange::NodeCrash { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spider_topology::gen;
    use spider_types::Amount;

    fn topo() -> Topology {
        gen::isp_topology(Amount::from_xrp(100))
    }

    #[test]
    fn generation_is_deterministic() {
        let t = topo();
        let cfg = FaultConfig::default();
        let a = FaultPlan::generate(&t, &cfg, &mut DetRng::new(7)).unwrap();
        let b = FaultPlan::generate(&t, &cfg, &mut DetRng::new(7)).unwrap();
        assert_eq!(a, b);
        let c = FaultPlan::generate(&t, &cfg, &mut DetRng::new(8)).unwrap();
        assert_ne!(a, c, "different seeds must differ");
        assert_eq!(a.message_loss.len(), t.channel_count());
        // Events sorted by instant, within the horizon, on valid nodes.
        for w in a.events.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        for e in &a.events {
            assert!(e.at.as_secs_f64() < cfg.horizon_secs);
            match e.change {
                FaultChange::NodeCrash { node } | FaultChange::NodeRecover { node } => {
                    assert!(node.index() < t.node_count())
                }
            }
        }
        // Per-channel loss wanders around the base within [0.5x, 1.5x].
        for &p in &a.message_loss {
            assert!(p >= cfg.message_loss_prob * 0.5 - 1e-12);
            assert!(p <= cfg.message_loss_prob * 1.5 + 1e-12);
        }
    }

    #[test]
    fn every_crash_precedes_its_recovery() {
        let t = topo();
        let cfg = FaultConfig {
            crash: Some(CrashConfig {
                rate_per_sec: 2.0,
                recovery_mean_secs: Some(1.0),
            }),
            ..FaultConfig::default()
        };
        let plan = FaultPlan::generate(&t, &cfg, &mut DetRng::new(3)).unwrap();
        assert!(plan.crash_count() > 0, "crash stream never fired");
        // Walk the sorted schedule: a node can only recover while down.
        let mut down = vec![0u32; t.node_count()];
        for e in &plan.events {
            match e.change {
                FaultChange::NodeCrash { node } => down[node.index()] += 1,
                FaultChange::NodeRecover { node } => {
                    assert!(down[node.index()] > 0, "recover before any crash");
                    down[node.index()] -= 1;
                }
            }
        }
    }

    #[test]
    fn intensity_scales_faults() {
        let t = topo();
        let base = FaultConfig::default();
        let quiet = FaultPlan::generate(&t, &base.scaled(0.0), &mut DetRng::new(5)).unwrap();
        assert!(quiet.is_quiet(), "zero intensity must be a quiet plan");
        let mild = FaultPlan::generate(&t, &base.scaled(0.5), &mut DetRng::new(5)).unwrap();
        let harsh = FaultPlan::generate(&t, &base.scaled(50.0), &mut DetRng::new(5)).unwrap();
        assert!(!harsh.is_quiet());
        assert!(harsh.crash_count() > mild.crash_count());
        assert!(harsh.message_loss[0] > mild.message_loss[0]);
        // Scaling clamps probabilities to 1.
        let extreme = base.scaled(1e9);
        assert!(extreme.message_loss_prob <= 1.0 && extreme.spike_prob <= 1.0);
        assert!(extreme.validate().is_ok());
    }

    #[test]
    fn validation_rejects_nonsense() {
        let t = topo();
        for cfg in [
            FaultConfig {
                message_loss_prob: -0.1,
                ..FaultConfig::default()
            },
            FaultConfig {
                ack_loss_prob: 1.5,
                ..FaultConfig::default()
            },
            FaultConfig {
                jitter_range_ms: Some([5.0, 2.0]),
                ..FaultConfig::default()
            },
            FaultConfig {
                hop_timeout_secs: 0.0,
                ..FaultConfig::default()
            },
            FaultConfig {
                crash: Some(CrashConfig {
                    rate_per_sec: -1.0,
                    recovery_mean_secs: None,
                }),
                ..FaultConfig::default()
            },
            FaultConfig {
                crash: Some(CrashConfig {
                    rate_per_sec: 0.1,
                    recovery_mean_secs: Some(0.0),
                }),
                ..FaultConfig::default()
            },
            FaultConfig {
                horizon_secs: -1.0,
                ..FaultConfig::default()
            },
        ] {
            assert!(FaultPlan::generate(&t, &cfg, &mut DetRng::new(0)).is_err());
        }
    }

    /// The shim round-trip for this crate's field shapes:
    /// `Option<[f64; 2]>` (an Option wrapping a fixed-size array) and a
    /// nested `Option<CrashConfig>` config struct — both compose from the
    /// vendored serde's generic `Option<T>` / `[T; N]` impls.
    #[test]
    fn config_and_plan_serde_round_trip() {
        for cfg in [
            FaultConfig::default(),
            FaultConfig {
                jitter_range_ms: None,
                crash: None,
                ..FaultConfig::default()
            },
            FaultConfig {
                jitter_range_ms: Some([0.0, 25.0]),
                crash: Some(CrashConfig {
                    rate_per_sec: 0.5,
                    recovery_mean_secs: None,
                }),
                ..FaultConfig::default()
            },
        ] {
            let json = serde_json::to_string(&cfg).unwrap();
            let back: FaultConfig = serde_json::from_str(&json).unwrap();
            assert_eq!(back, cfg);
        }
        let t = topo();
        let plan = FaultPlan::generate(&t, &FaultConfig::default(), &mut DetRng::new(5)).unwrap();
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }
}
