//! Criterion microbenchmarks for the core data structures and algorithms:
//! the per-operation costs behind the paper's overhead arguments (§3's
//! "max-flow … has high overhead, requiring O(|V|·|E|²) computation per
//! transaction" vs Spider's per-request path selection).

use criterion::{criterion_group, criterion_main, Criterion};
use spider_lp::fluid::{FluidProblem, PathSelection};
use spider_lp::paths::{k_edge_disjoint_paths, k_shortest_paths};
use spider_lp::primal_dual::{solve_problem, PrimalDualConfig};
use spider_maxflow::FlowNetwork;
use spider_paygraph::decompose::decompose;
use spider_paygraph::generate::skewed_demand;
use spider_sim::{ChannelState, NetworkView, PathTable, RouteRequest, Router};
use spider_topology::gen;
use spider_types::{Amount, DetRng, NodeId, PaymentId, SimTime};
use std::hint::black_box;

fn isp_flow_network() -> FlowNetwork {
    let topo = gen::isp_topology(Amount::from_xrp(30_000));
    let mut net = FlowNetwork::new(topo.node_count());
    for (_, ch) in topo.channels() {
        net.add_bidirectional(ch.u, ch.v, 15_000_000_000, 15_000_000_000);
    }
    net
}

fn bench_maxflow(c: &mut Criterion) {
    let mut g = c.benchmark_group("maxflow-isp");
    g.bench_function("dinic", |b| {
        b.iter_batched(
            isp_flow_network,
            |mut net| black_box(net.max_flow_dinic(NodeId(8), NodeId(20))),
            criterion::BatchSize::SmallInput,
        )
    });
    g.bench_function("edmonds_karp", |b| {
        b.iter_batched(
            isp_flow_network,
            |mut net| black_box(net.max_flow_edmonds_karp(NodeId(8), NodeId(20))),
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_paths(c: &mut Criterion) {
    let topo = gen::isp_topology(Amount::from_xrp(30_000));
    let mut g = c.benchmark_group("paths-isp");
    g.bench_function("yen_k4", |b| {
        b.iter(|| black_box(k_shortest_paths(&topo, NodeId(8), NodeId(20), 4)))
    });
    g.bench_function("edge_disjoint_k4", |b| {
        b.iter(|| black_box(k_edge_disjoint_paths(&topo, NodeId(8), NodeId(20), 4)))
    });
    // The per-source batched fill vs the per-pair oracle, over every
    // destination of one source — the candidate-prefill hot loop.
    let dsts: Vec<NodeId> = (0..topo.node_count() as u32)
        .filter(|&d| d != 8)
        .map(NodeId)
        .collect();
    g.bench_function("edge_disjoint_k4_all_dsts_per_pair", |b| {
        b.iter(|| {
            for &d in &dsts {
                black_box(k_edge_disjoint_paths(&topo, NodeId(8), d, 4));
            }
        })
    });
    g.bench_function("edge_disjoint_k4_all_dsts_source_oracle", |b| {
        let csr = spider_lp::paths::CsrGraph::new(&topo);
        b.iter(|| {
            let mut oracle = spider_lp::paths::SourceOracle::new(&topo, &csr, NodeId(8));
            for &d in &dsts {
                black_box(oracle.edge_disjoint(d, 4));
            }
        })
    });
    g.finish();
}

fn bench_lp(c: &mut Criterion) {
    let topo = gen::paper_example_topology(Amount::from_xrp(1_000_000));
    let demands = spider_paygraph::examples::paper_example_demands();
    let mut g = c.benchmark_group("fluid-lp");
    g.bench_function("simplex_paper_example", |b| {
        b.iter(|| {
            let p = FluidProblem::new(&topo, &demands, 0.5, PathSelection::KShortest(4));
            black_box(p.solve_balanced().expect("solves"))
        })
    });
    g.bench_function("primal_dual_1k_iters", |b| {
        let problem = FluidProblem::new(&topo, &demands, 0.5, PathSelection::KShortest(4));
        let mut cfg = PrimalDualConfig::for_demand_scale(2.0);
        cfg.iterations = 1_000;
        cfg.sample_every = 1_000;
        b.iter(|| black_box(solve_problem(&topo, &demands, 0.5, &problem, &cfg)))
    });
    g.finish();
}

fn bench_decompose(c: &mut Criterion) {
    let mut rng = DetRng::new(5);
    let demands = skewed_demand(100, 600, 1_000.0, 12.0, &mut rng);
    c.bench_function("circulation_decompose_100n", |b| {
        b.iter(|| black_box(decompose(&demands, 1e-6)))
    });
}

fn bench_routing(c: &mut Criterion) {
    let topo = gen::isp_topology(Amount::from_xrp(30_000));
    let channels: Vec<ChannelState> = topo
        .channels()
        .map(|(_, ch)| ChannelState::split_equally(ch.capacity))
        .collect();
    let req = RouteRequest {
        payment: PaymentId(0),
        src: NodeId(8),
        dst: NodeId(20),
        remaining: Amount::from_xrp(500),
        total: Amount::from_xrp(500),
        mtu: Amount::from_xrp(10),
        attempt: 0,
    };
    let mut g = c.benchmark_group("route-call-isp");
    g.bench_function("spider_waterfilling", |b| {
        let mut r = spider_routing::SpiderWaterfilling::new(4);
        let paths = PathTable::new();
        let view = NetworkView {
            topo: &topo,
            channels: &channels,
            paths: &paths,
            now: SimTime::ZERO,
        };
        r.route(&req, &view); // warm the path cache, as in steady state
        b.iter(|| black_box(r.route(&req, &view)))
    });
    g.bench_function("shortest_path_cached", |b| {
        let mut r = spider_routing::ShortestPath::new();
        let paths = PathTable::new();
        let view = NetworkView {
            topo: &topo,
            channels: &channels,
            paths: &paths,
            now: SimTime::ZERO,
        };
        r.route(&req, &view);
        b.iter(|| black_box(r.route(&req, &view)))
    });
    g.bench_function("max_flow", |b| {
        let mut r = spider_routing::MaxFlow::new();
        let paths = PathTable::new();
        let view = NetworkView {
            topo: &topo,
            channels: &channels,
            paths: &paths,
            now: SimTime::ZERO,
        };
        b.iter(|| black_box(r.route(&req, &view)))
    });
    g.bench_function("speedymurmurs", |b| {
        let mut r = spider_routing::SpeedyMurmurs::new(&topo, 3);
        let paths = PathTable::new();
        let view = NetworkView {
            topo: &topo,
            channels: &channels,
            paths: &paths,
            now: SimTime::ZERO,
        };
        b.iter(|| black_box(r.route(&req, &view)))
    });
    g.finish();
}

/// The per-unit hot path: bottleneck probing over interned hops vs the
/// legacy per-hop `channel_between` walk.
fn bench_path_bottleneck(c: &mut Criterion) {
    let topo = gen::isp_topology(Amount::from_xrp(30_000));
    let channels: Vec<ChannelState> = topo
        .channels()
        .map(|(_, ch)| ChannelState::split_equally(ch.capacity))
        .collect();
    let paths = PathTable::new();
    let view = NetworkView {
        topo: &topo,
        channels: &channels,
        paths: &paths,
        now: SimTime::ZERO,
    };
    let nodes = topo
        .shortest_path(NodeId(8), NodeId(20))
        .expect("reachable");
    let id = view.intern(&nodes);
    let mut g = c.benchmark_group("path-bottleneck-isp");
    g.bench_function("interned_hops", |b| {
        b.iter(|| black_box(view.bottleneck(black_box(id))))
    });
    g.bench_function("node_walk_channel_between", |b| {
        b.iter(|| black_box(view.path_bottleneck(black_box(&nodes))))
    });
    g.finish();
}

/// One engine step in isolation: a single payment's arrival → lock →
/// settle cycle, dominated by event dispatch and channel updates.
fn bench_engine_step(c: &mut Criterion) {
    use spider_sim::{SimConfig, Simulation, TxnSpec, Workload};
    use spider_types::SimDuration;
    let make = || {
        let topo = gen::isp_topology(Amount::from_xrp(30_000));
        let router = Box::new(spider_routing::ShortestPath::new());
        let workload = Workload {
            txns: vec![TxnSpec {
                time: SimTime::from_micros(1_000),
                src: NodeId(8),
                dst: NodeId(20),
                amount: Amount::from_xrp(100),
            }],
        };
        let cfg = SimConfig {
            horizon: SimDuration::from_secs(2),
            ..SimConfig::default()
        };
        Simulation::new(topo, workload, router, cfg).expect("builds")
    };
    c.bench_function("engine_step_single_payment", |b| {
        b.iter_batched(
            make,
            |mut sim| black_box(sim.run()),
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    use spider_core::{ExperimentConfig, SchemeConfig, TopologyConfig};
    use spider_sim::{SimConfig, WorkloadConfig};
    use spider_types::SimDuration;
    let cfg = ExperimentConfig {
        topology: TopologyConfig::Isp {
            capacity_xrp: 10_000,
        },
        workload: WorkloadConfig::small(1_000, 1_000.0),
        sim: SimConfig {
            horizon: SimDuration::from_secs(2),
            ..SimConfig::default()
        },
        scheme: SchemeConfig::SpiderWaterfilling { paths: 4 },
        dynamics: None,
        seed: 1,
    };
    c.bench_function("sim_1k_payments_isp", |b| {
        b.iter(|| black_box(cfg.run().expect("runs")))
    });
}

criterion_group!(
    benches,
    bench_maxflow,
    bench_paths,
    bench_lp,
    bench_decompose,
    bench_routing,
    bench_path_bottleneck,
    bench_engine_step,
    bench_end_to_end
);
criterion_main!(benches);
