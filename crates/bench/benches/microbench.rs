//! Criterion microbenchmarks for the core data structures and algorithms:
//! the per-operation costs behind the paper's overhead arguments (§3's
//! "max-flow … has high overhead, requiring O(|V|·|E|²) computation per
//! transaction" vs Spider's per-request path selection).

use criterion::{criterion_group, criterion_main, Criterion};
use spider_lp::fluid::{FluidProblem, PathSelection};
use spider_lp::paths::{k_edge_disjoint_paths, k_shortest_paths};
use spider_lp::primal_dual::{solve_problem, PrimalDualConfig};
use spider_maxflow::FlowNetwork;
use spider_paygraph::decompose::decompose;
use spider_paygraph::generate::skewed_demand;
use spider_sim::{ChannelState, NetworkView, PathTable, RouteRequest, Router};
use spider_topology::gen;
use spider_types::{Amount, DetRng, NodeId, PaymentId, SimTime};
use std::hint::black_box;

fn isp_flow_network() -> FlowNetwork {
    let topo = gen::isp_topology(Amount::from_xrp(30_000));
    let mut net = FlowNetwork::new(topo.node_count());
    for (_, ch) in topo.channels() {
        net.add_bidirectional(ch.u, ch.v, 15_000_000_000, 15_000_000_000);
    }
    net
}

fn bench_maxflow(c: &mut Criterion) {
    let mut g = c.benchmark_group("maxflow-isp");
    g.bench_function("dinic", |b| {
        b.iter_batched(
            isp_flow_network,
            |mut net| black_box(net.max_flow_dinic(NodeId(8), NodeId(20))),
            criterion::BatchSize::SmallInput,
        )
    });
    g.bench_function("edmonds_karp", |b| {
        b.iter_batched(
            isp_flow_network,
            |mut net| black_box(net.max_flow_edmonds_karp(NodeId(8), NodeId(20))),
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_paths(c: &mut Criterion) {
    let topo = gen::isp_topology(Amount::from_xrp(30_000));
    let mut g = c.benchmark_group("paths-isp");
    g.bench_function("yen_k4", |b| {
        b.iter(|| black_box(k_shortest_paths(&topo, NodeId(8), NodeId(20), 4)))
    });
    g.bench_function("edge_disjoint_k4", |b| {
        b.iter(|| black_box(k_edge_disjoint_paths(&topo, NodeId(8), NodeId(20), 4)))
    });
    // The per-source batched fill vs the per-pair oracle, over every
    // destination of one source — the candidate-prefill hot loop.
    let dsts: Vec<NodeId> = (0..topo.node_count() as u32)
        .filter(|&d| d != 8)
        .map(NodeId)
        .collect();
    g.bench_function("edge_disjoint_k4_all_dsts_per_pair", |b| {
        b.iter(|| {
            for &d in &dsts {
                black_box(k_edge_disjoint_paths(&topo, NodeId(8), d, 4));
            }
        })
    });
    g.bench_function("edge_disjoint_k4_all_dsts_source_oracle", |b| {
        let csr = spider_lp::paths::CsrGraph::new(&topo);
        b.iter(|| {
            let mut oracle = spider_lp::paths::SourceOracle::new(&topo, &csr, NodeId(8));
            for &d in &dsts {
                black_box(oracle.edge_disjoint(d, 4));
            }
        })
    });
    g.finish();
}

fn bench_lp(c: &mut Criterion) {
    let topo = gen::paper_example_topology(Amount::from_xrp(1_000_000));
    let demands = spider_paygraph::examples::paper_example_demands();
    let mut g = c.benchmark_group("fluid-lp");
    g.bench_function("simplex_paper_example", |b| {
        b.iter(|| {
            let p = FluidProblem::new(&topo, &demands, 0.5, PathSelection::KShortest(4));
            black_box(p.solve_balanced().expect("solves"))
        })
    });
    g.bench_function("primal_dual_1k_iters", |b| {
        let problem = FluidProblem::new(&topo, &demands, 0.5, PathSelection::KShortest(4));
        let mut cfg = PrimalDualConfig::for_demand_scale(2.0);
        cfg.iterations = 1_000;
        cfg.sample_every = 1_000;
        b.iter(|| black_box(solve_problem(&topo, &demands, 0.5, &problem, &cfg)))
    });
    g.finish();
}

fn bench_decompose(c: &mut Criterion) {
    let mut rng = DetRng::new(5);
    let demands = skewed_demand(100, 600, 1_000.0, 12.0, &mut rng);
    c.bench_function("circulation_decompose_100n", |b| {
        b.iter(|| black_box(decompose(&demands, 1e-6)))
    });
}

fn bench_routing(c: &mut Criterion) {
    let topo = gen::isp_topology(Amount::from_xrp(30_000));
    let channels: Vec<ChannelState> = topo
        .channels()
        .map(|(_, ch)| ChannelState::split_equally(ch.capacity))
        .collect();
    let req = RouteRequest {
        payment: PaymentId(0),
        src: NodeId(8),
        dst: NodeId(20),
        remaining: Amount::from_xrp(500),
        total: Amount::from_xrp(500),
        mtu: Amount::from_xrp(10),
        attempt: 0,
    };
    let mut g = c.benchmark_group("route-call-isp");
    g.bench_function("spider_waterfilling", |b| {
        let mut r = spider_routing::SpiderWaterfilling::new(4);
        let paths = PathTable::new();
        let view = NetworkView {
            topo: &topo,
            channels: &channels,
            paths: &paths,
            now: SimTime::ZERO,
        };
        r.route(&req, &view); // warm the path cache, as in steady state
        b.iter(|| black_box(r.route(&req, &view)))
    });
    g.bench_function("shortest_path_cached", |b| {
        let mut r = spider_routing::ShortestPath::new();
        let paths = PathTable::new();
        let view = NetworkView {
            topo: &topo,
            channels: &channels,
            paths: &paths,
            now: SimTime::ZERO,
        };
        r.route(&req, &view);
        b.iter(|| black_box(r.route(&req, &view)))
    });
    g.bench_function("max_flow", |b| {
        let mut r = spider_routing::MaxFlow::new();
        let paths = PathTable::new();
        let view = NetworkView {
            topo: &topo,
            channels: &channels,
            paths: &paths,
            now: SimTime::ZERO,
        };
        b.iter(|| black_box(r.route(&req, &view)))
    });
    g.bench_function("speedymurmurs", |b| {
        let mut r = spider_routing::SpeedyMurmurs::new(&topo, 3);
        let paths = PathTable::new();
        let view = NetworkView {
            topo: &topo,
            channels: &channels,
            paths: &paths,
            now: SimTime::ZERO,
        };
        b.iter(|| black_box(r.route(&req, &view)))
    });
    g.finish();
}

/// The per-unit hot path: bottleneck probing over interned hops vs the
/// legacy per-hop `channel_between` walk.
fn bench_path_bottleneck(c: &mut Criterion) {
    let topo = gen::isp_topology(Amount::from_xrp(30_000));
    let channels: Vec<ChannelState> = topo
        .channels()
        .map(|(_, ch)| ChannelState::split_equally(ch.capacity))
        .collect();
    let paths = PathTable::new();
    let view = NetworkView {
        topo: &topo,
        channels: &channels,
        paths: &paths,
        now: SimTime::ZERO,
    };
    let nodes = topo
        .shortest_path(NodeId(8), NodeId(20))
        .expect("reachable");
    let id = view.intern(&nodes);
    let mut g = c.benchmark_group("path-bottleneck-isp");
    g.bench_function("interned_hops", |b| {
        b.iter(|| black_box(view.bottleneck(black_box(id))))
    });
    g.bench_function("node_walk_channel_between", |b| {
        b.iter(|| black_box(view.path_bottleneck(black_box(&nodes))))
    });
    g.finish();
}

/// One engine step in isolation: a single payment's arrival → lock →
/// settle cycle, dominated by event dispatch and channel updates.
fn bench_engine_step(c: &mut Criterion) {
    use spider_sim::{SimConfig, Simulation, TxnSpec, Workload};
    use spider_types::SimDuration;
    let make = || {
        let topo = gen::isp_topology(Amount::from_xrp(30_000));
        let router = Box::new(spider_routing::ShortestPath::new());
        let workload = Workload {
            txns: vec![TxnSpec {
                time: SimTime::from_micros(1_000),
                src: NodeId(8),
                dst: NodeId(20),
                amount: Amount::from_xrp(100),
            }],
        };
        let cfg = SimConfig {
            horizon: SimDuration::from_secs(2),
            ..SimConfig::default()
        };
        Simulation::new(topo, workload, router, cfg).expect("builds")
    };
    c.bench_function("engine_step_single_payment", |b| {
        b.iter_batched(
            make,
            |mut sim| black_box(sim.run()),
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    use spider_core::{ExperimentConfig, SchemeConfig, TopologyConfig};
    use spider_sim::{SimConfig, WorkloadConfig};
    use spider_types::SimDuration;
    let cfg = ExperimentConfig {
        topology: TopologyConfig::Isp {
            capacity_xrp: 10_000,
        },
        workload: WorkloadConfig::small(1_000, 1_000.0),
        sim: SimConfig {
            horizon: SimDuration::from_secs(2),
            ..SimConfig::default()
        },
        scheme: SchemeConfig::SpiderWaterfilling { paths: 4 },
        dynamics: None,
        faults: None,
        overload: None,
        seed: 1,
    };
    c.bench_function("sim_1k_payments_isp", |b| {
        b.iter(|| black_box(cfg.run().expect("runs")))
    });
}

/// The engine calendar: bucketed calendar queue vs the binary heap it
/// replaced, on an engine-shaped mix (steady near-future settles/hops
/// plus occasional far-future timeouts), interleaved push/pop.
fn bench_calendar(c: &mut Criterion) {
    use spider_sim::CalendarQueue;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    const N: u64 = 50_000;
    // Deterministic pseudo-random deltas: mostly < 1 s, every 16th ~ 10 s.
    let delta = |i: u64| {
        let h = i.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 40;
        if i.is_multiple_of(16) {
            10_000_000 + h
        } else {
            h % 1_000_000
        }
    };
    let mut g = c.benchmark_group("calendar-queue");
    g.bench_function("calendar_push_pop_50k", |b| {
        b.iter(|| {
            let mut q = CalendarQueue::new();
            let mut now = 0u64;
            for i in 0..N {
                q.push(SimTime::from_micros(now + delta(i)), i, i as usize);
                // Interleave: every other op pops (half the queue drains
                // during the run, half at the end — the engine's shape).
                if i % 2 == 1 {
                    let (t, _, _) = q.pop().expect("non-empty");
                    now = now.max(t.micros());
                }
            }
            while let Some(e) = q.pop() {
                black_box(e);
            }
        })
    });
    g.bench_function("binary_heap_push_pop_50k", |b| {
        b.iter(|| {
            let mut q: BinaryHeap<Reverse<(u64, u64, usize)>> = BinaryHeap::new();
            let mut now = 0u64;
            for i in 0..N {
                q.push(Reverse((now + delta(i), i, i as usize)));
                if i % 2 == 1 {
                    let Reverse((t, _, _)) = q.pop().expect("non-empty");
                    now = now.max(t);
                }
            }
            while let Some(e) = q.pop() {
                black_box(e);
            }
        })
    });
    g.finish();
}

/// A churn close's work discovery: per-channel index lookup vs the full
/// slab scan it replaced. 100k live slots spread over 256 channels, each
/// crossing 3 channels (a path) — the indexed close touches ~1/256th of
/// what the scan walks.
fn bench_channel_index_close(c: &mut Criterion) {
    use spider_sim::ChannelIndex;
    const SLOTS: u32 = 100_000;
    const CHANNELS: usize = 256;
    let hops = |s: u32| {
        let h = (s as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        [
            (h % CHANNELS as u64) as usize,
            ((h >> 16) % CHANNELS as u64) as usize,
            ((h >> 32) % CHANNELS as u64) as usize,
        ]
    };
    // The slab the scan walks: each slot's crossed channels.
    let slab: Vec<[usize; 3]> = (0..SLOTS).map(hops).collect();
    let mut idx = ChannelIndex::new(CHANNELS);
    for s in 0..SLOTS {
        for ch in hops(s) {
            idx.insert(ch, s, 0, |_, _| true);
        }
    }
    let mut g = c.benchmark_group("churn-close-discovery");
    let mut out = Vec::new();
    g.bench_function("indexed_per_channel", |b| {
        b.iter(|| {
            idx.collect_live_sorted(black_box(37), |_, _| true, &mut out);
            black_box(out.len())
        })
    });
    g.bench_function("full_slab_scan", |b| {
        b.iter(|| {
            out.clear();
            for (s, chans) in slab.iter().enumerate() {
                if chans.contains(black_box(&37)) {
                    out.push(s as u32);
                }
            }
            black_box(out.len())
        })
    });
    g.finish();
}

/// Churn cache invalidation: the reverse channel→pairs index vs scanning
/// every cached pair's candidate hops (what `on_topology_change` did
/// before the index).
fn bench_cache_invalidation(c: &mut Criterion) {
    use spider_routing::{PathCache, PathPolicy};
    use spider_sim::PathTable;
    let topo = gen::isp_topology(Amount::from_xrp(30_000));
    let table = PathTable::new();
    let mut cache = PathCache::new(PathPolicy::EdgeDisjoint(4));
    let pairs: Vec<(NodeId, NodeId)> = (0..32u32)
        .flat_map(|s| {
            (0..32u32)
                .filter(move |&d| d != s)
                .map(move |d| (NodeId(s), NodeId(d)))
        })
        .collect();
    cache.prefill(&topo, &table, &pairs);
    let closed = [spider_types::ChannelId(11)];
    let mut g = c.benchmark_group("cache-invalidation");
    g.bench_function("reverse_index", |b| {
        b.iter(|| black_box(cache.pairs_traversing(black_box(&closed))))
    });
    g.bench_function("full_cache_scan", |b| {
        b.iter(|| black_box(cache.pairs_traversing_scan(&table, black_box(&closed))))
    });
    g.finish();
}

/// Trace-event record cost, backing the "zero-cost when disabled" claim:
/// `enabled` records into a live sink through the engine's
/// `Option<TraceSink>` pattern; `disabled` takes the identical loop with
/// the option `None` — one never-taken branch per would-be record, and the
/// event struct is never even constructed; `compiled_out` is the loop with
/// the trace code deleted. Disabled vs compiled-out is the true overhead
/// of leaving the hooks in the engine.
fn bench_trace_record(c: &mut Criterion) {
    use spider_obs::trace::TraceEventKind;
    use spider_obs::TraceSink;
    use spider_types::ChannelId;
    const N: u64 = 10_000;
    let mut g = c.benchmark_group("trace-record");
    g.bench_function("enabled_10k", |b| {
        b.iter(|| {
            let mut sink = Some(TraceSink::new());
            let mut acc = 0u64;
            for i in 0..N {
                if let Some(t) = sink.as_mut() {
                    t.record(
                        i,
                        TraceEventKind::UnitForwarded {
                            unit: i,
                            channel: ChannelId((i % 64) as u32),
                            hop: (i % 4) as u32,
                        },
                    );
                }
                acc = acc.wrapping_add(black_box(i));
            }
            black_box((acc, sink.expect("live sink").len()))
        })
    });
    g.bench_function("disabled_branch_only_10k", |b| {
        b.iter(|| {
            let mut sink: Option<TraceSink> = black_box(None);
            let mut acc = 0u64;
            for i in 0..N {
                if let Some(t) = sink.as_mut() {
                    t.record(
                        i,
                        TraceEventKind::UnitForwarded {
                            unit: i,
                            channel: ChannelId((i % 64) as u32),
                            hop: (i % 4) as u32,
                        },
                    );
                }
                acc = acc.wrapping_add(black_box(i));
            }
            black_box(acc)
        })
    });
    g.bench_function("compiled_out_10k", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..N {
                acc = acc.wrapping_add(black_box(i));
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_maxflow,
    bench_paths,
    bench_lp,
    bench_decompose,
    bench_routing,
    bench_path_bottleneck,
    bench_calendar,
    bench_channel_index_close,
    bench_cache_invalidation,
    bench_trace_record,
    bench_engine_step,
    bench_end_to_end
);
criterion_main!(benches);
