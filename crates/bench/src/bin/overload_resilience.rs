//! Graceful degradation under overload (`spider-overload`).
//!
//! Sweeps offered load from 0.5× to 8× the calibrated arrival rate on
//! the ISP and Ripple-like topologies, with the adversarial plan riding
//! on every grid point (a flash-crowd spike via the deterministic time
//! warp, Zipf-skewed hot pairs, liquidity-drain flows, griefing holds),
//! and runs each point twice: once with the overload protections on
//! (deadline-aware shedding + per-channel circuit breakers +
//! sender-side admission shaping) and once with everything off, fanned
//! through [`ResilienceSweep`].
//!
//! Offered load scales the arrival *rate* only: the demand — the
//! transaction population — is fixed, and the horizon is fixed at the
//! span the slowest grid point needs, so every row answers the same
//! question with the same goodput denominator: *the network owes these
//! payments; how much of that demand does it complete when the demand
//! arrives N× faster than the calibrated rate?*
//!
//! Output: the usual `FigureRow` CSV/JSONL schema (`parameter =
//! offered_load`; labels carry a `-protected` / `-unprotected` suffix),
//! plus per-run degradation detail on stderr — goodput, sheds,
//! deferrals and deadline expiries.
//!
//! Expected shape (the headline of this artifact): with protections on,
//! goodput is flat across the sweep — the shaping admission gate
//! re-offers the burst at the calibrated rate, so a 4× or 8× spike
//! completes the same demand a 1× drip does, just with intake latency.
//! With protections off, goodput *collapses* past the knee: the burst
//! lands on unbounded FIFO queues, every queued unit rots toward its
//! 5 s deadline while pinning locked upstream liquidity, and payments
//! the 1× point would have completed expire instead.
//!
//! ```sh
//! cargo run --release -p spider-bench --bin overload_resilience -- --out out
//! cargo run --release -p spider-bench --bin overload_resilience -- --smoke --out out  # CI
//! ```

use spider_bench::{emit, HarnessArgs, ResilienceSweep};
use spider_core::output::FigureRow;
use spider_core::{ExperimentConfig, SchemeConfig};
use spider_overload::{
    DrainConfig, FlashCrowdConfig, GriefingConfig, HotPairsConfig, OverloadConfig,
};
use spider_sim::{AdmissionConfig, QueueConfig, QueueingMode, SimReport};

/// The adversarial plan riding on every grid point, pinned to the
/// arrival span (the window the workload's transactions actually occupy
/// at this offered load — `count / rate`, not the sim horizon) so the
/// flash window compresses real arrivals at 8× just as it does at 0.5×:
/// a 2× flash spike at 30–40 % of the span, Zipf hot pairs, drain flows
/// and griefing holds.
fn attack(span_secs: f64) -> OverloadConfig {
    OverloadConfig {
        flash_crowd: Some(FlashCrowdConfig {
            start_secs: span_secs * 0.3,
            duration_secs: span_secs * 0.1,
            rate_multiplier: 2.0,
        }),
        hot_pairs: Some(HotPairsConfig::default()),
        drain: Some(DrainConfig::default()),
        // Griefing holds scale with whatever the victim admits: every
        // held unit pins its whole path's liquidity for the hold — the
        // attack admission control exists to bound.
        griefing: Some(GriefingConfig {
            fraction: 0.05,
            hold_secs: 5.0,
        }),
        horizon_secs: span_secs,
    }
}

/// One grid point: the base workload offered at `load`× the calibrated
/// arrival rate (count fixed — offered load compresses the arrival
/// span), the adversarial plan pinned to that span, and — in the
/// protected variant — shedding plus a shaping admission gate at the
/// calibrated rate.
fn scaled_experiment(base: &ExperimentConfig, load: f64, protected: bool) -> ExperimentConfig {
    let mut cfg = base.clone();
    let base_rate = base.workload.rate_per_sec;
    let span_1x = base.workload.count as f64 / base_rate;
    cfg.workload.rate_per_sec = base_rate * load;
    // Fixed horizon across the sweep: long enough for the slowest grid
    // point (0.5× → a 2× span) plus a full payment deadline of slack,
    // which also covers the shaping gate's worst backlog (re-offers
    // paced at the calibrated rate drain within one 1× span). A shared
    // horizon keeps the goodput denominator identical on every row.
    cfg.sim.horizon = spider_types::SimDuration::from_secs_f64(span_1x * 2.0 + 6.0);
    cfg.overload = Some(attack(span_1x / load));
    // Every scheme runs the §5 per-channel queueing model here: overload
    // has to be absorbed by queues before it can rot (or be shed) —
    // lockstep's instant whole-path failure is itself a crude admission
    // gate and would mask the collapse this bin measures.
    //
    // The two variants differ in buffer policy, which *is* the
    // protection under test. Unprotected is classic bufferbloat: queues
    // deep enough to never tail-drop, FIFO head-of-line blocking, every
    // queued unit waiting out a deadline it will miss while pinning its
    // locked upstream hops. Protected bounds the buffer and spends the
    // bound well — deadline-aware shedding evicts the most doomed unit
    // when a queue fills, the shaping gate re-offers the burst at the
    // calibrated rate (deadlines run from the re-offer, so paced
    // payments are not pre-expired), and the routing breakers steer
    // retries away from channels that shed.
    let max_queue_units = if protected { 256 } else { 1_000_000 };
    cfg.sim.queueing = QueueingMode::PerChannelFifo(QueueConfig {
        max_queue_delay: spider_types::SimDuration::from_secs(10),
        max_queue_units,
        ..QueueConfig::default()
    });
    if protected {
        cfg.sim.shedding = true;
        cfg.sim.admission = Some(AdmissionConfig {
            rate_per_sec: base_rate,
            defer: true,
            ..AdmissionConfig::default()
        });
    }
    cfg
}

fn report_detail(r: &SimReport, load: f64) {
    let goodput = r.goodput_xrp_per_sec();
    eprintln!(
        "  {:<22} x{load}: attempted={} completed={} goodput_xrp_s={:.0} \
         deferred={} shed={} expired={} queue_timeout={}",
        r.scheme,
        r.attempted_payments,
        r.completed_payments,
        goodput,
        r.admission_deferred,
        r.drops_by_reason.shed,
        r.drops_by_reason.expired,
        r.drops_by_reason.queue_timeout,
    );
}

fn main() {
    let args = HarnessArgs::parse();
    let schemes = [
        SchemeConfig::ShortestPath,
        SchemeConfig::SpiderWaterfilling { paths: 4 },
        SchemeConfig::spider_protocol(4),
    ];
    let loads = [0.5, 1.0, 2.0, 4.0, 8.0];
    let mut rows: Vec<FigureRow> = Vec::new();
    for (suffix, protected) in [("protected", true), ("unprotected", false)] {
        let labels = [
            format!("overload-isp-{suffix}"),
            format!("overload-ripple-{suffix}"),
        ];
        rows.extend(
            ResilienceSweep {
                labels: [&labels[0], &labels[1]],
                parameter: "offered_load",
                capacity_xrp: 1_000,
                intensities: &loads,
                schemes: &schemes,
            }
            .run(
                &args,
                |label, base| {
                    // The grid runs ten times per topology (5 loads × 2
                    // variants elsewhere in the loop): start from a
                    // lighter ISP base than the headline figures so the
                    // whole sweep stays tractable. The horizon is
                    // recomputed per grid point from this count.
                    if !args.full && label.contains("isp") {
                        base.workload.count = 8_000;
                    }
                },
                |base, load| scaled_experiment(base, load, protected),
                report_detail,
            ),
        );
    }
    emit("overload_resilience", &rows, &args.out_dir);
}
