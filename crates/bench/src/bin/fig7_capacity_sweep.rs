//! Fig. 7 — "Effect of increasing capacity per link on the success metrics
//! when routing payments on the ISP topology. All links in the network
//! have the same credit."
//!
//! Sweeps per-channel capacity from 10,000 to 100,000 XRP for all six
//! schemes and reports both success metrics at each point.
//!
//! The whole (capacity × scheme) grid is fanned across worker threads in
//! one [`run_sweep`] call, so the machine stays saturated instead of
//! processing one capacity's six schemes at a time.
//!
//! Expected shape (paper): every scheme improves with capacity; Spider
//! (Waterfilling) reaches any given success level with the least capital;
//! Spider (LP) is the least sensitive to capacity ("it does a better job
//! of avoiding imbalance"); the atomic schemes trail throughout.

use spider_bench::{emit, isp_experiment, paper_schemes, HarnessArgs};
use spider_core::output::FigureRow;
use spider_core::{run_sweep, seed_scheme_grid};

fn main() {
    let args = HarnessArgs::parse();
    let capacities: &[u64] = &[10_000, 20_000, 30_000, 50_000, 75_000, 100_000];
    let schemes = paper_schemes();

    let mut jobs = Vec::new();
    for &capacity in capacities {
        let cfg = isp_experiment(capacity, args.full, args.seed);
        jobs.extend(seed_scheme_grid(&cfg, &[args.seed], &schemes));
    }
    eprintln!(
        "running {} jobs ({} capacities × {} schemes)…",
        jobs.len(),
        capacities.len(),
        schemes.len()
    );
    let reports = run_sweep(&jobs).expect("experiments run");

    let mut rows: Vec<FigureRow> = Vec::new();
    for (i, r) in reports.iter().enumerate() {
        let capacity = capacities[i / schemes.len()];
        rows.push(FigureRow::new(
            "fig7-isp",
            "capacity_xrp",
            capacity as f64,
            r,
        ));
    }

    emit("fig7_capacity_sweep", &rows, &args.out_dir);
}
