//! Fig. 7 — "Effect of increasing capacity per link on the success metrics
//! when routing payments on the ISP topology. All links in the network
//! have the same credit."
//!
//! Sweeps per-channel capacity from 10,000 to 100,000 XRP for all six
//! schemes and reports both success metrics at each point.
//!
//! Expected shape (paper): every scheme improves with capacity; Spider
//! (Waterfilling) reaches any given success level with the least capital;
//! Spider (LP) is the least sensitive to capacity ("it does a better job
//! of avoiding imbalance"); the atomic schemes trail throughout.

use spider_bench::{emit, isp_experiment, paper_schemes, HarnessArgs};
use spider_core::output::FigureRow;

fn main() {
    let args = HarnessArgs::parse();
    let capacities: &[u64] = &[10_000, 20_000, 30_000, 50_000, 75_000, 100_000];
    let mut rows: Vec<FigureRow> = Vec::new();

    for &capacity in capacities {
        eprintln!("running capacity {capacity} XRP (6 schemes)…");
        let cfg = isp_experiment(capacity, args.full, args.seed);
        let reports = cfg.run_schemes(&paper_schemes()).expect("experiment runs");
        for r in &reports {
            rows.push(FigureRow::new(
                "fig7-isp",
                "capacity_xrp",
                capacity as f64,
                r,
            ));
        }
    }

    emit("fig7_capacity_sweep", &rows, &args.out_dir);
}
