//! Fig. 6 — "Comparison of payments completed across schemes on the ISP
//! and Ripple topologies when the capacity per link is 30,000."
//!
//! Reproduces both panels: success ratio (left) and success volume
//! (right) for all six schemes on both topologies.
//!
//! Expected shape (paper): Max-flow and Spider (Waterfilling) lead the
//! success ratio with waterfilling within ~5 % of max-flow; shortest-path
//! (packet-switched, SRPT) sits ~10 % above the atomic schemes
//! (SilentWhispers, SpeedyMurmurs); Spider (LP)'s success *volume* pins
//! near the circulation share of the demand (≈52 % ISP / ≈22 % Ripple in
//! the paper's workload).

use spider_bench::{emit, isp_experiment, paper_schemes, ripple_experiment, HarnessArgs};
use spider_core::output::FigureRow;

fn main() {
    // Extra option: SPIDER_FIG6_ONLY=isp|ripple restricts to one topology
    // (useful when regenerating a single panel at full scale).
    let only = std::env::var("SPIDER_FIG6_ONLY").ok();
    let args = HarnessArgs::parse();
    let capacity = 30_000;
    let mut rows: Vec<FigureRow> = Vec::new();

    for (label, cfg) in [
        ("fig6-isp", isp_experiment(capacity, args.full, args.seed)),
        (
            "fig6-ripple",
            ripple_experiment(capacity, args.full, args.seed),
        ),
    ] {
        if let Some(filter) = &only {
            if !label.ends_with(filter.as_str()) {
                continue;
            }
        }
        eprintln!("running {label} ({} txns, 6 schemes)…", cfg.workload.count);
        // SPIDER_FIG6_SEQUENTIAL=1 runs schemes one at a time, emitting each
        // row as it completes (partial results on long full-scale runs).
        let sequential = std::env::var("SPIDER_FIG6_SEQUENTIAL").is_ok();
        let reports = if sequential {
            let mut out = Vec::new();
            for scheme in paper_schemes() {
                let mut c = cfg.clone();
                c.scheme = scheme;
                let r = c.run().expect("experiment runs");
                let row = FigureRow::new(label, "capacity_xrp", capacity as f64, &r);
                println!("{}", spider_core::output::to_csv_row(&row));
                out.push(r);
            }
            out
        } else {
            cfg.run_schemes(&paper_schemes()).expect("experiment runs")
        };
        for r in &reports {
            let row = FigureRow::new(label, "capacity_xrp", capacity as f64, r);
            if !sequential {
                println!("{}", spider_core::output::to_csv_row(&row));
            }
            rows.push(row);
        }
        // The paper's reference line: Spider (LP)'s success volume should
        // pin at the circulation fraction of the demand matrix (Prop. 1).
        let rng = spider_types::DetRng::new(cfg.seed);
        let topo = cfg.topology.build(&rng).expect("topology builds");
        let mut wrng = rng.fork("workload");
        let w = spider_sim::Workload::generate(topo.node_count(), &cfg.workload, &mut wrng);
        let demands = spider_core::experiment::demand_graph(&w, topo.node_count());
        let nu = spider_paygraph::decompose::max_circulation_value(&demands, 1e-6);
        eprintln!(
            "{label}: demand circulation fraction = {:.1}% (Spider (LP) volume should pin here)",
            100.0 * nu / demands.total_demand()
        );
    }

    emit("fig6_success", &rows, &args.out_dir);
}
