//! Scheme resilience under live topology churn (`spider-dynamics`).
//!
//! Runs every registered scheme ([`SchemeConfig::extended_lineup`]) on the
//! ISP and Ripple-like topologies across a sweep of churn intensities
//! (`0 ×` = the paper's frozen snapshot, then increasingly violent
//! schedules of channel closes/reopens, capacity resizes, node
//! leave/join cycles, mid-run channel spawns and flap traces), all on the
//! identical workload and seed per topology, fanned through
//! [`ResilienceSweep`].
//!
//! Output: the usual `FigureRow` CSV/JSONL schema (`parameter =
//! churn_intensity`), plus per-run disruption detail on stderr — units
//! failed back by closes, payments that never recovered, and the
//! time-to-recover throughput after each event
//! ([`SimReport::churn_recovery_times`]).
//!
//! Expected shape: cache-repairing schemes (waterfilling, shortest-path,
//! pricing, the §5 protocol) degrade gracefully with intensity, while the
//! static offline schemes (Spider (LP), SilentWhispers, SpeedyMurmurs —
//! whose precomputed state this bin deliberately leaves unrepaired) fall
//! off faster; that gap *is* the value of incremental repair.
//!
//! ```sh
//! cargo run --release -p spider-bench --bin churn_resilience -- --out out
//! cargo run --release -p spider-bench --bin churn_resilience -- --smoke --out out  # CI
//! # The paper's own measurement point: full Ripple topology, 200 s
//! # horizon, cache-repairing schemes only (see `paper_scale_schemes`):
//! cargo run --release -p spider-bench --bin churn_resilience -- --paper-scale --out out
//! ```

use spider_bench::{emit, HarnessArgs, ResilienceSweep};
use spider_core::{ExperimentConfig, SchemeConfig};
use spider_dynamics::DynamicsConfig;
use spider_sim::SimReport;

/// The base (1×) churn schedule the intensity knob scales.
fn base_dynamics(horizon_secs: f64) -> DynamicsConfig {
    DynamicsConfig {
        close_rate_per_sec: 0.4,
        reopen_mean_secs: Some(3.0),
        resize_rate_per_sec: 0.2,
        resize_factor_range: [0.5, 2.0],
        node_leave_rate_per_sec: 0.04,
        spawn_fraction: 0.04,
        flap_channels: 2,
        flap_period_secs: 5.0,
        horizon_secs,
    }
}

fn scaled_experiment(base: &ExperimentConfig, intensity: f64) -> ExperimentConfig {
    let horizon = base.sim.horizon.as_secs_f64();
    ExperimentConfig {
        dynamics: (intensity > 0.0).then(|| base_dynamics(horizon).scaled(intensity)),
        ..base.clone()
    }
}

fn report_detail(r: &SimReport, intensity: f64) {
    if r.topology_events == 0 {
        return;
    }
    let recoveries = r.churn_recovery_times(3, 0.9);
    let recovered: Vec<f64> = recoveries.iter().flatten().copied().collect();
    let mean_recovery = if recovered.is_empty() {
        f64::NAN
    } else {
        recovered.iter().sum::<f64>() / recovered.len() as f64
    };
    eprintln!(
        "  {:<22} x{intensity}: events={} closed={} opened={} resized={} \
         units_churn_dropped={} payments_failed_churn={} mean_recovery_s={:.1} unrecovered={}",
        r.scheme,
        r.topology_events,
        r.churn_channels_closed,
        r.churn_channels_opened,
        r.churn_channels_resized,
        r.units_dropped_churn,
        r.payments_failed_churn,
        mean_recovery,
        recoveries.iter().filter(|t| t.is_none()).count(),
    );
}

/// The `--paper-scale` scheme lineup: the cache-repairing, non-atomic
/// schemes whose incremental churn repair is the story at 3,774 nodes.
/// The offline/atomic schemes are deliberately excluded there: their
/// precomputed state runs unrepaired (the laptop-scale sweep already
/// shows that cliff), and max-flow's per-payment cost is impractical at
/// full Ripple scale.
fn paper_scale_schemes() -> Vec<SchemeConfig> {
    vec![
        SchemeConfig::ShortestPath,
        SchemeConfig::SpiderWaterfilling { paths: 4 },
        SchemeConfig::SpiderPricing { paths: 4 },
        SchemeConfig::spider_protocol(4),
    ]
}

fn main() {
    let args = HarnessArgs::parse();
    let schemes = if args.paper_scale {
        paper_scale_schemes()
    } else {
        SchemeConfig::extended_lineup()
    };
    let rows = ResilienceSweep {
        labels: ["churn-isp", "churn-ripple"],
        parameter: "churn_intensity",
        capacity_xrp: 4_000,
        intensities: &[0.0, 0.5, 1.0, 2.0],
        schemes: &schemes,
    }
    .run(
        &args,
        |label, base| {
            if args.paper_scale && label == "churn-ripple" {
                // `--full` Ripple runs the paper's 85 s trace; paper scale
                // extends it to the 200 s horizon of the headline figures.
                let rate = base.workload.rate_per_sec;
                base.workload.count = (200.0 * rate) as usize;
                base.sim.horizon = spider_types::SimDuration::from_secs_f64(
                    base.workload.count as f64 / rate + 1.0,
                );
            }
        },
        scaled_experiment,
        report_detail,
    );
    emit("churn_resilience", &rows, &args.out_dir);
}
