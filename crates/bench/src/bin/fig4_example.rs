//! Fig. 4 / §5.1 — the motivating example.
//!
//! On the 5-node topology with the paper's demand set (total 12 units/s):
//!
//! * shortest-path balanced routing achieves **5** units/s (Fig. 4b);
//! * optimal balanced routing achieves **8** units/s (Fig. 4c), which
//!   equals ν(C*), the maximum-circulation value (Fig. 5b);
//! * the residual DAG carries the remaining 4 units/s (Fig. 5c).
//!
//! The binary solves both LPs with the built-in simplex solver and prints
//! paper-expected vs measured numbers.

use spider_lp::fluid::{FluidProblem, PathSelection};
use spider_paygraph::decompose::decompose;
use spider_paygraph::examples;
use spider_topology::gen;
use spider_types::Amount;

fn main() {
    let topo = gen::paper_example_topology(Amount::from_xrp(1_000_000));
    let demands = examples::paper_example_demands();
    let delta = 0.5;

    let sp = FluidProblem::new(&topo, &demands, delta, PathSelection::ShortestOnly)
        .solve_balanced()
        .expect("shortest-path LP solves");
    let opt = FluidProblem::new(&topo, &demands, delta, PathSelection::KShortest(4))
        .solve_balanced()
        .expect("multipath LP solves");
    let dec = decompose(&demands, 1e-6);

    println!("Fig. 4 / §5.1 motivating example (5 nodes, 6 channels, 8 demands)");
    println!("{:<44} {:>8} {:>10}", "quantity", "paper", "measured");
    let rows = [
        (
            "total demand (units/s)",
            examples::TOTAL_DEMAND,
            demands.total_demand(),
        ),
        (
            "shortest-path balanced throughput (Fig. 4b)",
            examples::SHORTEST_PATH_THROUGHPUT,
            sp.throughput,
        ),
        (
            "optimal balanced throughput (Fig. 4c)",
            examples::MAX_CIRCULATION,
            opt.throughput,
        ),
        (
            "max circulation ν(C*) (Fig. 5b)",
            examples::MAX_CIRCULATION,
            dec.circulation_value,
        ),
        (
            "DAG residue (Fig. 5c)",
            examples::TOTAL_DEMAND - examples::MAX_CIRCULATION,
            dec.dag.total_demand(),
        ),
    ];
    let mut all_match = true;
    for (name, paper, measured) in rows {
        let ok = (paper - measured).abs() < 1e-6;
        all_match &= ok;
        println!(
            "{name:<44} {paper:>8.1} {measured:>10.4} {}",
            if ok { "✓" } else { "✗" }
        );
    }

    println!("\ncirculation edge weights (paper Fig. 5b: seven edges, 2,1,1,1,1,1,1):");
    let mut weights: Vec<(String, f64)> = dec
        .circulation
        .edges()
        .map(|e| (format!("{} → {}", e.src.0 + 1, e.dst.0 + 1), e.rate))
        .collect();
    weights.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    for (edge, w) in &weights {
        println!("  {edge}: {w:.1}");
    }

    println!("\noptimal multipath flows (Fig. 4c routing):");
    for f in &opt.flows {
        let path: Vec<String> = f.path.nodes.iter().map(|n| (n.0 + 1).to_string()).collect();
        println!(
            "  {} → {}: {:.2} via {}",
            f.src.0 + 1,
            f.dst.0 + 1,
            f.rate,
            path.join("-")
        );
    }

    assert!(all_match, "measured values diverge from the paper");
    println!("\nall quantities match the paper ✓");
}
