//! Candidate-path fill benchmark: wall-clock cost of computing every
//! (src, dst) pair's candidate set on the 3,774-node Ripple-like graph.
//!
//! ROADMAP's hot-path analysis found `ripple-fifo-protocol` wall time
//! dominated by the lazy per-pair `k_edge_disjoint_paths` fill (4 BFS plus
//! a workspace allocation per pair). This bin measures the replacement —
//! the batched per-source `PathOracle` behind `PathCache::prefill` — on
//! the exact pair list of the seed-42 ripple workload, next to a live
//! re-measurement of the lazy fill, and judges it against the committed
//! pre-oracle numbers in `baselines/pathfill_lazy.json`.
//!
//! Every configuration also cross-checks the prefetched candidate sets
//! against the lazy cache pair by pair (`matches_lazy`); the bin fails
//! loudly if the batched oracle ever returns different paths — it is a
//! *throughput* change, never a routing change.
//!
//! ```sh
//! cargo run --release -p spider-bench --bin pathfill_throughput -- --out .
//! # CI smoke (400-node graph, no baseline comparison):
//! cargo run --release -p spider-bench --bin pathfill_throughput -- --quick --out .
//! ```

use spider_routing::{PathCache, PathPolicy};
use spider_sim::{PathTable, SizeDistribution, Workload, WorkloadConfig};
use spider_types::{Amount, DetRng, NodeId};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

/// The lazy per-pair fill throughput recorded on the pre-oracle tree
/// (seed 42, single core).
const BASELINE_JSON: &str = include_str!("../../baselines/pathfill_lazy.json");

struct Case {
    name: &'static str,
    policy: PathPolicy,
}

struct Run {
    name: &'static str,
    pairs: usize,
    paths_interned: usize,
    lazy_wall: f64,
    batched_wall: f64,
    matches_lazy: bool,
}

fn cases() -> Vec<Case> {
    vec![
        Case {
            name: "edge-disjoint-k4",
            policy: PathPolicy::EdgeDisjoint(4),
        },
        Case {
            name: "yen-k4",
            policy: PathPolicy::KShortest(4),
        },
        Case {
            name: "shortest",
            policy: PathPolicy::Shortest,
        },
    ]
}

/// The workload pair list: distinct (src, dst) in first-arrival order —
/// exactly what `Simulation::run` hands to `Router::prewarm`.
fn pair_list(
    seed: u64,
    quick: bool,
) -> (
    spider_topology::Topology,
    Vec<(NodeId, NodeId)>,
    &'static str,
) {
    let (nodes, count, topology) = if quick {
        (400, 2_000, "ripple-400")
    } else {
        (spider_topology::gen::RIPPLE_NODES, 10_000, "ripple-3774")
    };
    let rng = DetRng::new(seed);
    let mut trng = rng.fork("topology");
    let raw = spider_topology::gen::ripple_like(nodes, Amount::from_xrp(30_000), &mut trng);
    let topo = spider_topology::analysis::largest_component(&raw);
    let mut wrng = rng.fork("workload");
    let wl = Workload::generate(
        topo.node_count(),
        &WorkloadConfig {
            count,
            rate_per_sec: 75_000.0 / 85.0,
            size: SizeDistribution::RippleFull,
            sender_skew_scale: nodes as f64 / 8.0,
        },
        &mut wrng,
    );
    let pairs = wl.distinct_pairs(None);
    (topo, pairs, topology)
}

/// Wall-clock measurements take the fastest of `REPS` runs: the minimum
/// is the least-noise estimator of the true cost on a shared box, and it
/// is applied to the lazy and the batched side alike.
const REPS: usize = 3;

fn run_case(case: &Case, topo: &spider_topology::Topology, pairs: &[(NodeId, NodeId)]) -> Run {
    // Lazy reference: one `PathCache::get` per pair, in pair order.
    let mut lazy_wall = f64::INFINITY;
    let mut lazy_state = None;
    for _ in 0..REPS {
        let lazy_table = PathTable::new();
        let mut lazy = PathCache::new(case.policy);
        let t0 = Instant::now();
        for &(s, d) in pairs {
            lazy.get(topo, &lazy_table, s, d);
        }
        lazy_wall = lazy_wall.min(t0.elapsed().as_secs_f64());
        lazy_state = Some((lazy, lazy_table));
    }
    let (mut lazy, lazy_table) = lazy_state.expect("at least one rep");

    // Batched: one `prefill` over the whole pair list.
    let mut batched_wall = f64::INFINITY;
    let mut batched_state = None;
    for _ in 0..REPS {
        let table = PathTable::new();
        let mut cache = PathCache::new(case.policy);
        let t0 = Instant::now();
        cache.prefill(topo, &table, pairs);
        batched_wall = batched_wall.min(t0.elapsed().as_secs_f64());
        batched_state = Some((cache, table));
    }
    let (mut cache, table) = batched_state.expect("at least one rep");

    // Candidate sets — and the PathIds this fill order assigns — must be
    // bit-identical to the lazy path. Ids are compared *and* resolved to
    // their node sequences: two independently-interned tables can hand
    // out equal ids for different paths, so the id check alone could miss
    // a same-position drift.
    let mut matches_lazy = table.len() == lazy_table.len();
    'pairs: for &(s, d) in pairs {
        let batched_ids = cache.get(topo, &table, s, d).to_vec();
        let lazy_ids = lazy.get(topo, &lazy_table, s, d);
        if batched_ids != lazy_ids {
            matches_lazy = false;
        } else {
            for (&b, &l) in batched_ids.iter().zip(lazy_ids) {
                if table.entry(b).nodes() != lazy_table.entry(l).nodes() {
                    matches_lazy = false;
                    break;
                }
            }
        }
        if !matches_lazy {
            eprintln!("ERROR: {}: candidate set for {s}->{d} drifted", case.name);
            break 'pairs;
        }
    }
    Run {
        name: case.name,
        pairs: pairs.len(),
        paths_interned: table.len(),
        lazy_wall,
        batched_wall,
        matches_lazy,
    }
}

/// The committed baseline pairs/sec for a config, if recorded.
fn baseline_pairs_per_sec(topology: &str, name: &str) -> Option<f64> {
    let root = serde_json::parse(BASELINE_JSON).ok()?;
    let full = format!("{topology}-{name}");
    root["runs"].as_array()?.iter().find_map(|r| {
        (r["config"].as_str() == Some(full.as_str()))
            .then(|| r["pairs_per_sec"].as_f64().expect("baseline throughput"))
    })
}

fn main() {
    let mut quick = false;
    let mut seed = 42u64;
    let mut out_dir = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed requires an integer");
            }
            "--out" => out_dir = PathBuf::from(args.next().expect("--out requires a path")),
            "--help" | "-h" => {
                eprintln!("options: --quick  --seed N  --out DIR");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown option {other}; try --help");
                std::process::exit(2);
            }
        }
    }
    // The baseline was recorded on the full-scale seed-42 pair list.
    let compare_baseline = !quick && seed == 42;
    if !quick && seed != 42 {
        eprintln!("note: the baseline was recorded at seed 42; skipping baseline comparison");
    }

    let (topo, pairs, topology) = pair_list(seed, quick);
    eprintln!(
        "{topology}: {} nodes, {} channels, {} distinct pairs",
        topo.node_count(),
        topo.channel_count(),
        pairs.len()
    );

    let mut records = Vec::new();
    let mut speedups: Vec<f64> = Vec::new();
    let mut drifted = false;
    for case in cases() {
        eprintln!("running {topology}-{}…", case.name);
        let run = run_case(&case, &topo, &pairs);
        if !run.matches_lazy {
            drifted = true;
        }
        let lazy_pps = run.pairs as f64 / run.lazy_wall.max(1e-9);
        let batched_pps = run.pairs as f64 / run.batched_wall.max(1e-9);
        let baseline = compare_baseline
            .then(|| baseline_pairs_per_sec(topology, run.name))
            .flatten();
        let speedup = baseline.map(|b| batched_pps / b);
        eprintln!(
            "  lazy {:.3}s ({:.0} pairs/s) → batched {:.3}s ({:.0} pairs/s){}",
            run.lazy_wall,
            lazy_pps,
            run.batched_wall,
            batched_pps,
            speedup
                .map(|s| format!(", {s:.2}x vs committed lazy baseline"))
                .unwrap_or_default(),
        );
        if let Some(s) = speedup {
            speedups.push(s);
        }
        let mut s = String::new();
        write!(
            s,
            "{{\"config\":\"{topology}-{}\",\"topology\":\"{topology}\",\"policy\":\"{}\",\
             \"pairs\":{},\"paths_interned\":{},\
             \"lazy_wall_seconds\":{:.4},\"lazy_pairs_per_sec\":{:.0},\
             \"batched_wall_seconds\":{:.4},\"batched_pairs_per_sec\":{:.0},\
             \"live_speedup\":{:.2},\
             \"baseline_pairs_per_sec\":{},\"speedup_vs_baseline\":{},\
             \"matches_lazy\":{}}}",
            run.name,
            run.name,
            run.pairs,
            run.paths_interned,
            run.lazy_wall,
            lazy_pps,
            run.batched_wall,
            batched_pps,
            batched_pps / lazy_pps.max(1e-9),
            baseline
                .map(|b| format!("{b:.0}"))
                .unwrap_or_else(|| "null".to_string()),
            speedup
                .map(|v| format!("{v:.2}"))
                .unwrap_or_else(|| "null".to_string()),
            run.matches_lazy,
        )
        .expect("write to string");
        records.push(s);
    }
    let geomean = (!speedups.is_empty()).then(|| {
        let log_sum: f64 = speedups.iter().map(|s| s.ln()).sum();
        (log_sum / speedups.len() as f64).exp()
    });
    let doc = format!(
        "{{\"bench\":\"pathfill_throughput\",\"seed\":{seed},\"quick\":{quick},\
         \"geomean_speedup\":{},\"runs\":[\n{}\n]}}\n",
        geomean
            .map(|g| format!("{g:.2}"))
            .unwrap_or_else(|| "null".to_string()),
        records.join(",\n"),
    );
    print!("{doc}");
    if let Some(g) = geomean {
        eprintln!("geomean pair-fill speedup vs committed lazy baseline: {g:.2}x");
    }
    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let path = out_dir.join("BENCH_pathfill.json");
    std::fs::write(&path, &doc).expect("write BENCH_pathfill.json");
    eprintln!("wrote {}", path.display());
    // Validate that what we wrote parses (the CI smoke step relies on it).
    serde_json::parse(&doc).expect("BENCH_pathfill.json is well-formed JSON");
    // A fill whose candidate sets drifted from the lazy oracle is not a
    // faster oracle — it is a different one. Fail loudly.
    if drifted {
        eprintln!("batched candidate sets no longer match the lazy oracle; failing");
        std::process::exit(1);
    }
}
