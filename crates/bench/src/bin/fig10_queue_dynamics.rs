//! Fig. 10-style queue dynamics: per-channel router-queue depths **and
//! delivered throughput on the same time axis**, for the §5 decentralized
//! protocol against the windowed transport baselines.
//!
//! The paper's Fig. 10 shows how Spider's router queues build and drain
//! as the price signal steers senders away from congested channels. This
//! bin runs three schemes on the identical capacity-constrained ISP
//! workload with per-channel depth sampling enabled (via the unified
//! `ObsConfig` sampler registry):
//!
//! * `spider-protocol` — queues + marking + per-path AIMD;
//! * `shortest-path+window` — the coarse per-pair AIMD window, same
//!   queueing mode (the controller the protocol replaces);
//! * `spider-waterfilling+window` — the balance-probing upper baseline.
//!
//! and emits one row per simulated second: each scheme's delivered XRP/s
//! (`SimReport::throughput_series`) and total queued units, plus the
//! depth of the protocol run's eight busiest channels (by peak depth,
//! named by endpoint pair). Overlaying throughput on the queue axis is
//! what shows the §5 story: queues absorb bursts *without* a throughput
//! collapse, while the marking feedback keeps them bounded.
//!
//! ```sh
//! cargo run --release -p spider-bench --bin fig10_queue_dynamics -- --out out
//! # writes out/fig10_queue_dynamics.csv (+ .jsonl)
//! # CI smoke (seconds) / the paper's own scale (full Ripple graph,
//! # 200 s horizon, streamed arrivals):
//! cargo run --release -p spider-bench --bin fig10_queue_dynamics -- --smoke --out out
//! cargo run --release -p spider-bench --bin fig10_queue_dynamics -- --paper-scale --out out
//! ```

use spider_bench::HarnessArgs;
use spider_core::congestion::{WindowConfig, Windowed};
use spider_core::{run_sweep, ExperimentConfig, SchemeConfig, SweepJob, TopologyConfig};
use spider_routing::{ShortestPath, SpiderWaterfilling};
use spider_sim::{QueueConfig, QueueingMode, SimConfig, SizeDistribution, WorkloadConfig};
use spider_types::{Amount, SimDuration};
use std::fmt::Write as _;

fn main() {
    let args = HarnessArgs::parse();
    // Scale ladder: CI smoke (seconds) → default laptop scale → `--full`
    // (the paper's 200 s ISP horizon) → `--paper-scale` (the full
    // 3,774-node Ripple graph driven for 200 s; arrivals reach the
    // engine as a lazy stream, so the calendar stays bounded by
    // in-flight work).
    let (count, rate) = if args.smoke {
        (3_000usize, 1_000.0)
    } else if args.paper_scale {
        let rate = 75_000.0 / 85.0;
        ((200.0 * rate) as usize, rate)
    } else if args.full {
        (200_000usize, 1_000.0)
    } else {
        (20_000usize, 1_000.0)
    };
    let qc = QueueConfig::default();
    // Constrained capacity so queues actually form.
    let (topology, capacity_xrp, mtu, skew, size) = if args.paper_scale {
        (
            TopologyConfig::RippleLike {
                nodes: spider_topology::gen::RIPPLE_NODES,
                capacity_xrp: 4_000,
            },
            4_000u64,
            Amount::from_xrp(20),
            spider_topology::gen::RIPPLE_NODES as f64 / 8.0,
            SizeDistribution::RippleFull,
        )
    } else {
        (
            TopologyConfig::Isp {
                capacity_xrp: 4_000,
            },
            4_000,
            Amount::from_xrp(10),
            8.0,
            SizeDistribution::RippleIsp,
        )
    };
    let cfg = ExperimentConfig {
        topology,
        workload: WorkloadConfig {
            count,
            rate_per_sec: rate,
            size,
            sender_skew_scale: skew,
        },
        sim: {
            let mut sim = SimConfig {
                horizon: SimDuration::from_secs_f64(count as f64 / rate + 1.0),
                mtu,
                queueing: QueueingMode::PerChannelFifo(qc),
                ..SimConfig::default()
            };
            sim.obs.sampler.queue_depths = true;
            sim
        },
        scheme: SchemeConfig::spider_protocol(4),
        dynamics: None,
        faults: None,
        overload: None,
        seed: args.seed,
    };
    eprintln!(
        "running 3 schemes on {} (capacity {capacity_xrp} XRP, {count} txns, queue sampling on)…",
        if args.paper_scale {
            "ripple-3774"
        } else {
            "isp"
        }
    );
    let topo = cfg
        .topology
        .build(&spider_types::DetRng::new(cfg.seed))
        .expect("topology builds");
    let names = [
        "spider-protocol",
        "shortest-path+window",
        "spider-waterfilling+window",
    ];
    let jobs = vec![
        SweepJob::Scheme(cfg.clone()),
        SweepJob::Custom {
            cfg: cfg.clone(),
            build: Box::new(|| {
                Box::new(Windowed::new(ShortestPath::new(), WindowConfig::default()))
            }),
        },
        SweepJob::Custom {
            cfg: cfg.clone(),
            build: Box::new(|| {
                Box::new(Windowed::new(
                    SpiderWaterfilling::new(4),
                    WindowConfig::default(),
                ))
            }),
        },
    ];
    let reports = run_sweep(&jobs).expect("experiments run");
    let protocol = &reports[0];
    let series = protocol.queue_depth_series();
    assert!(
        !series.is_empty(),
        "queue depth sampling must produce samples"
    );

    // The protocol run's eight busiest channels by peak depth carry the
    // story.
    let n_channels = series[0].len();
    let mut peak: Vec<(u32, usize)> = (0..n_channels)
        .map(|c| (series.iter().map(|s| s[c]).max().unwrap_or(0), c))
        .collect();
    peak.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let top: Vec<usize> = peak.iter().take(8).map(|&(_, c)| c).collect();
    let name = |c: usize| {
        let ch = topo.channel(spider_types::ChannelId::from_index(c));
        format!("{}-{}", ch.u, ch.v)
    };
    let col = |scheme: &str| scheme.replace(['-', '+'], "_");

    // One row per second, all three schemes on the same time axis.
    let rows = reports
        .iter()
        .map(|r| {
            r.throughput_series
                .len()
                .max(r.queue_occupancy_series().len())
        })
        .max()
        .unwrap_or(0)
        .max(series.len());
    let mut csv = String::from("t_s");
    for n in names {
        write!(csv, ",thrpt_xrp_{0},queued_units_{0}", col(n)).expect("write header");
    }
    for &c in &top {
        write!(csv, ",depth_{}", name(c)).expect("write header");
    }
    csv.push('\n');
    let mut jsonl = String::new();
    for t in 0..rows {
        write!(csv, "{t}").expect("write row");
        write!(jsonl, "{{\"t_s\":{t}").expect("write row");
        for (n, r) in names.iter().zip(&reports) {
            let thrpt = r.throughput_series.get(t).copied().unwrap_or(0.0);
            let queued = r.queue_occupancy_series().get(t).copied().unwrap_or(0.0);
            write!(csv, ",{thrpt:.1},{queued:.0}").expect("write row");
            write!(
                jsonl,
                ",\"thrpt_xrp_{0}\":{thrpt:.1},\"queued_units_{0}\":{queued:.0}",
                col(n)
            )
            .expect("write row");
        }
        let sample = series.get(t);
        for &c in &top {
            let depth = sample.map(|s| s[c]).unwrap_or(0);
            write!(csv, ",{depth}").expect("write row");
            write!(jsonl, ",\"{}\":{depth}", name(c)).expect("write row");
        }
        csv.push('\n');
        jsonl.push_str("}\n");
    }
    print!("{csv}");
    for (n, r) in names.iter().zip(&reports) {
        eprintln!(
            "{n}: success ratio {:.3}, marking rate {:.3}, peak total queued {}",
            r.success_ratio(),
            r.marking_rate(),
            r.queue_occupancy_series()
                .iter()
                .map(|&d| d as u64)
                .max()
                .unwrap_or(0),
        );
    }
    if let Some(dir) = &args.out_dir {
        std::fs::create_dir_all(dir).expect("create output directory");
        std::fs::write(dir.join("fig10_queue_dynamics.csv"), &csv).expect("write csv");
        std::fs::write(dir.join("fig10_queue_dynamics.jsonl"), &jsonl).expect("write jsonl");
        eprintln!(
            "wrote {}/{{fig10_queue_dynamics.csv,fig10_queue_dynamics.jsonl}}",
            dir.display()
        );
    }
}
