//! Fig. 10-style queue dynamics: per-channel router-queue depths over
//! time under the §5 decentralized protocol.
//!
//! The paper's Fig. 10 shows how Spider's router queues build and drain
//! as the price signal steers senders away from congested channels. This
//! bin runs `spider-protocol` on the capacity-constrained ISP topology
//! with [`QueueConfig::sample_queue_depths`] enabled and emits the
//! recorded [`SimReport::queue_depth_series`] as a time series: one row
//! per simulated second with the total queued units, plus the depth of
//! the eight channels with the highest peak depth (named by their
//! endpoint pair).
//!
//! ```sh
//! cargo run --release -p spider-bench --bin fig10_queue_dynamics -- --out out
//! # writes out/fig10_queue_dynamics.csv (+ .jsonl)
//! ```
//!
//! Expected shape: queues grow during the initial pricing transient, then
//! oscillate around a modest level instead of diverging — the marking
//! feedback keeps them bounded while throughput stays high.

use spider_bench::HarnessArgs;
use spider_core::{ExperimentConfig, SchemeConfig, TopologyConfig};
use spider_sim::{QueueConfig, QueueingMode, SimConfig, SizeDistribution, WorkloadConfig};
use spider_types::{Amount, SimDuration};
use std::fmt::Write as _;

fn main() {
    let args = HarnessArgs::parse();
    let (count, rate) = if args.full {
        (200_000usize, 1_000.0)
    } else {
        (20_000usize, 1_000.0)
    };
    let qc = QueueConfig {
        sample_queue_depths: true,
        ..QueueConfig::default()
    };
    let cfg = ExperimentConfig {
        // Constrained capacity so queues actually form.
        topology: TopologyConfig::Isp {
            capacity_xrp: 4_000,
        },
        workload: WorkloadConfig {
            count,
            rate_per_sec: rate,
            size: SizeDistribution::RippleIsp,
            sender_skew_scale: 8.0,
        },
        sim: SimConfig {
            horizon: SimDuration::from_secs_f64(count as f64 / rate + 1.0),
            mtu: Amount::from_xrp(10),
            queueing: QueueingMode::PerChannelFifo(qc),
            ..SimConfig::default()
        },
        scheme: SchemeConfig::SpiderProtocol { paths: 4 },
        seed: args.seed,
    };
    eprintln!(
        "running spider-protocol on isp (capacity 4,000 XRP, {count} txns, queue sampling on)…"
    );
    let topo = cfg
        .topology
        .build(&spider_types::DetRng::new(cfg.seed))
        .expect("topology builds");
    let report = cfg.run().expect("experiment runs");
    let series = &report.queue_depth_series;
    assert!(
        !series.is_empty(),
        "queue depth sampling must produce samples"
    );

    // The eight busiest channels by peak depth carry the story.
    let n_channels = series[0].len();
    let mut peak: Vec<(u32, usize)> = (0..n_channels)
        .map(|c| (series.iter().map(|s| s[c]).max().unwrap_or(0), c))
        .collect();
    peak.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let top: Vec<usize> = peak.iter().take(8).map(|&(_, c)| c).collect();
    let name = |c: usize| {
        let ch = topo.channel(spider_types::ChannelId::from_index(c));
        format!("{}-{}", ch.u, ch.v)
    };

    let mut csv = String::from("t_s,total_queued");
    for &c in &top {
        write!(csv, ",depth_{}", name(c)).expect("write header");
    }
    csv.push('\n');
    let mut jsonl = String::new();
    for (t, sample) in series.iter().enumerate() {
        let total: u64 = sample.iter().map(|&d| d as u64).sum();
        write!(csv, "{t},{total}").expect("write row");
        write!(jsonl, "{{\"t_s\":{t},\"total_queued\":{total}").expect("write row");
        for &c in &top {
            write!(csv, ",{}", sample[c]).expect("write row");
            write!(jsonl, ",\"{}\":{}", name(c), sample[c]).expect("write row");
        }
        csv.push('\n');
        jsonl.push_str("}\n");
    }
    print!("{csv}");
    eprintln!(
        "success ratio {:.3}, marking rate {:.3}, peak total queued {}",
        report.success_ratio(),
        report.marking_rate(),
        series
            .iter()
            .map(|s| s.iter().map(|&d| d as u64).sum::<u64>())
            .max()
            .unwrap_or(0),
    );
    if let Some(dir) = &args.out_dir {
        std::fs::create_dir_all(dir).expect("create output directory");
        std::fs::write(dir.join("fig10_queue_dynamics.csv"), &csv).expect("write csv");
        std::fs::write(dir.join("fig10_queue_dynamics.jsonl"), &jsonl).expect("write jsonl");
        eprintln!(
            "wrote {}/{{fig10_queue_dynamics.csv,fig10_queue_dynamics.jsonl}}",
            dir.display()
        );
    }
}
