//! §5.3.1 ablation — how much do path count and path-selection policy
//! matter?
//!
//! "Practical implementations would restrict the set of paths considered
//! between each source and destination … There are a variety of possible
//! strategies of selecting these paths … We leave an investigation of the
//! best way to select the paths to future work." — this binary is that
//! investigation, on the ISP topology:
//!
//! * Spider (Waterfilling) with k ∈ {1, 2, 4, 8} edge-disjoint paths
//!   (k = 1 degenerates to shortest-path routing with balance awareness);
//! * Spider (Pricing) — the online imbalance-aware extension — at k = 4,
//!   against waterfilling at k = 4.

use spider_bench::{emit, isp_experiment, HarnessArgs};
use spider_core::output::FigureRow;
use spider_core::SchemeConfig;

fn main() {
    let args = HarnessArgs::parse();
    let mut rows: Vec<FigureRow> = Vec::new();
    let base = isp_experiment(10_000, args.full, args.seed);

    for k in [1usize, 2, 4, 8] {
        eprintln!("running waterfilling k={k}…");
        let mut cfg = base.clone();
        cfg.scheme = SchemeConfig::SpiderWaterfilling { paths: k };
        let mut r = cfg.run().expect("runs");
        r.scheme = format!("waterfilling-k{k}");
        rows.push(FigureRow::new("ablation-paths", "k", k as f64, &r));
    }
    eprintln!("running pricing k=4…");
    let mut cfg = base.clone();
    cfg.scheme = SchemeConfig::SpiderPricing { paths: 4 };
    let r = cfg.run().expect("runs");
    rows.push(FigureRow::new("ablation-paths", "k", 4.0, &r));

    emit("ablation_path_choice", &rows, &args.out_dir);

    // More paths should never hurt waterfilling materially.
    assert!(
        rows[2].success_volume_pct >= rows[0].success_volume_pct - 1.0,
        "k=4 should beat or match k=1"
    );
    println!(
        "\nk=1 → k=4 success volume: {:.1}% → {:.1}% (multipath diversity pays)",
        rows[0].success_volume_pct, rows[2].success_volume_pct
    );
}
