//! Proposition 1 — "the maximum achievable throughput in a payment channel
//! network with perfect balance equals ν(C*)".
//!
//! For a batch of random payment graphs over random connected topologies,
//! verifies both directions of the proposition with the LP machinery:
//!
//! * **upper bound**: the balanced-routing LP never exceeds ν(C*), however
//!   many candidate paths it is given;
//! * **achievability**: with enough paths and capacity, the LP reaches
//!   ν(C*) (the paper routes C* along a spanning tree, which a rich path
//!   set subsumes).

use spider_bench::HarnessArgs;
use spider_lp::fluid::{FluidProblem, PathSelection};
use spider_paygraph::decompose::max_circulation_value;
use spider_paygraph::generate::mixed_demand;
use spider_topology::gen;
use spider_types::{Amount, DetRng};

fn main() {
    let args = HarnessArgs::parse();
    let trials = if args.full { 60 } else { 20 };
    let mut rng = DetRng::new(args.seed);
    let capacity = Amount::from_xrp(1_000_000); // ample: isolates the balance bound

    println!(
        "{:>5} {:>7} {:>10} {:>10} {:>12} {:>12}  verdict",
        "trial", "nodes", "demand", "nu(C*)", "lp(sp only)", "lp(k=6)"
    );
    let mut violations = 0;
    let mut achieved = 0;
    for trial in 0..trials {
        let n = 5 + rng.index(5); // 5..9 nodes
        let topo = gen::cycle(n, capacity); // connected; cycle keeps paths diverse
        let circ_frac = rng.uniform();
        let demand = mixed_demand(n, 6.0 + rng.uniform() * 6.0, circ_frac, &mut rng);
        if demand.edge_count() == 0 {
            continue;
        }
        // decompose() quantizes rates to the precision grid; use a fine
        // grid and compare with a matching tolerance.
        let nu = max_circulation_value(&demand, 1e-9);
        let tol = 1e-6 * demand.total_demand().max(1.0);
        let sp = FluidProblem::new(&topo, &demand, 0.5, PathSelection::ShortestOnly)
            .solve_balanced()
            .expect("LP solves")
            .throughput;
        let multi = FluidProblem::new(&topo, &demand, 0.5, PathSelection::KShortest(6))
            .solve_balanced()
            .expect("LP solves")
            .throughput;
        // Upper bound must hold for ANY path set.
        let bound_ok = sp <= nu + tol && multi <= nu + tol;
        // Rich path set on a cycle reaches the optimum.
        let achieves = (multi - nu).abs() < tol;
        if !bound_ok {
            violations += 1;
        }
        if achieves {
            achieved += 1;
        }
        println!(
            "{trial:>5} {n:>7} {:>10.3} {nu:>10.3} {sp:>12.3} {multi:>12.3}  {}{}",
            demand.total_demand(),
            if bound_ok {
                "bound✓"
            } else {
                "BOUND VIOLATED"
            },
            if achieves { " achieves✓" } else { "" },
        );
    }
    println!("\nupper bound held in all trials: {}", violations == 0);
    println!("ν(C*) achieved with k=6 paths in {achieved}/{trials} trials");
    assert_eq!(violations, 0, "Proposition 1 upper bound violated");
    assert!(
        achieved * 10 >= trials * 9,
        "ν(C*) should be achievable in ≥90% of trials with a rich path set"
    );
    println!("Proposition 1 verified ✓");
}
