//! Engine-throughput benchmark: wall-clock cost of the simulation engine
//! itself on the two §6.1 topologies, in both queueing modes.
//!
//! Unlike the figure bins (which care about *routing* quality), this bin
//! measures how fast the event loop chews through a fixed, deterministic
//! workload — the quantity the hot-path work (path interning, slab
//! recycling, analytic waterfilling, bitset path oracles) is judged
//! against. It emits `BENCH_engine.json` with one record per
//! configuration: events/sec, units/sec, wall seconds, peak live
//! events/units, plus the pre-refactor baseline wall time recorded in
//! `baselines/engine_pre_refactor.json` and the resulting speedup.
//!
//! Because the hot-path work is semantics-preserving, every configuration
//! also cross-checks its outcomes (completed payments, delivered volume,
//! locked units) against the baseline record; `matches_baseline` goes
//! false — loudly — if a "performance" change ever alters results.
//!
//! Full runs finish with an engine **phase breakdown** (calendar pop,
//! routing, forwarding, settlement, churn repair, sampling) measured on
//! separate profiled reruns, so the profiling clocks never touch the
//! timed sections.
//!
//! ```sh
//! cargo run --release -p spider-bench --bin engine_throughput -- --out .
//! # CI smoke (ISP only, short horizon, no baseline comparison):
//! cargo run --release -p spider-bench --bin engine_throughput -- --quick --out .
//! # payment-lifecycle trace smoke: emit + schema-check both trace formats
//! cargo run --release -p spider-bench --bin engine_throughput -- --trace-smoke --out .
//! # invariant-monitor smoke: monitored run ≡ unmonitored run, bit for bit
//! cargo run --release -p spider-bench --bin engine_throughput -- --monitor-smoke
//! ```

use spider_core::experiment::demand_graph;
use spider_core::{ExperimentConfig, SchemeConfig, TopologyConfig};
use spider_sim::{
    QueueConfig, QueueingMode, SimConfig, SimReport, Simulation, SizeDistribution, SlabStats,
    StreamingWorkload, Workload, WorkloadConfig,
};
use spider_types::{Amount, DetRng, SimDuration};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

/// The pre-refactor wall times and outcomes, measured on this grid at the
/// commit before the hot-path overhaul (seed 42, default scale).
const BASELINE_JSON: &str = include_str!("../../baselines/engine_pre_refactor.json");

/// One measured configuration.
struct BenchCase {
    name: &'static str,
    topology: &'static str,
    mode: &'static str,
    cfg: ExperimentConfig,
    /// Feed the engine a lazy [`StreamingWorkload`] instead of a
    /// materialized transaction list (the paper-scale rows: nothing is
    /// pre-seeded, so `peak_live_events` shows the in-flight bound).
    streaming: bool,
}

/// The measured result of one case.
struct BenchRun {
    case: &'static str,
    topology: &'static str,
    mode: &'static str,
    scheme: String,
    wall_seconds: f64,
    report: SimReport,
    slab: SlabStats,
}

fn isp_base(count: usize, seed: u64) -> ExperimentConfig {
    let rate = 1_000.0;
    ExperimentConfig {
        topology: TopologyConfig::Isp {
            capacity_xrp: 30_000,
        },
        workload: WorkloadConfig {
            count,
            rate_per_sec: rate,
            size: SizeDistribution::RippleIsp,
            sender_skew_scale: 8.0,
        },
        sim: SimConfig {
            horizon: SimDuration::from_secs_f64(count as f64 / rate + 1.0),
            mtu: Amount::from_xrp(10),
            ..SimConfig::default()
        },
        scheme: SchemeConfig::ShortestPath,
        dynamics: None,
        faults: None,
        overload: None,
        seed,
    }
}

fn ripple_base(count: usize, seed: u64) -> ExperimentConfig {
    let rate = 75_000.0 / 85.0;
    ExperimentConfig {
        topology: TopologyConfig::RippleLike {
            nodes: spider_topology::gen::RIPPLE_NODES,
            capacity_xrp: 30_000,
        },
        workload: WorkloadConfig {
            count,
            rate_per_sec: rate,
            size: SizeDistribution::RippleFull,
            sender_skew_scale: spider_topology::gen::RIPPLE_NODES as f64 / 8.0,
        },
        sim: SimConfig {
            horizon: SimDuration::from_secs_f64(count as f64 / rate + 1.0),
            mtu: Amount::from_xrp(20),
            ..SimConfig::default()
        },
        scheme: SchemeConfig::ShortestPath,
        dynamics: None,
        faults: None,
        overload: None,
        seed,
    }
}

fn with_scheme(mut cfg: ExperimentConfig, scheme: SchemeConfig, queued: bool) -> ExperimentConfig {
    cfg.scheme = scheme;
    if queued {
        cfg.sim.queueing = QueueingMode::PerChannelFifo(QueueConfig::default());
    }
    cfg
}

/// The fixed measurement grid: ISP and the 3,774-node Ripple-like graph,
/// lockstep and per-channel-FIFO queueing, over the schemes that exercise
/// each hot path (cached shortest paths, analytic waterfilling, the §5
/// queue machinery). `--quick` trims to the ISP cases at a short horizon
/// for CI smoke runs; quick results are not baseline-comparable.
fn cases(seed: u64, quick: bool) -> Vec<BenchCase> {
    let isp_count = if quick { 3_000 } else { 20_000 };
    let ripple_count = 10_000;
    let mut v = vec![
        BenchCase {
            name: "isp-lockstep-shortest",
            topology: "isp",
            mode: "lockstep",
            cfg: with_scheme(isp_base(isp_count, seed), SchemeConfig::ShortestPath, false),
            streaming: false,
        },
        BenchCase {
            name: "isp-lockstep-waterfilling",
            topology: "isp",
            mode: "lockstep",
            cfg: with_scheme(
                isp_base(isp_count, seed),
                SchemeConfig::SpiderWaterfilling { paths: 4 },
                false,
            ),
            streaming: false,
        },
        BenchCase {
            name: "isp-fifo-protocol",
            topology: "isp",
            mode: "per-channel-fifo",
            cfg: with_scheme(
                isp_base(isp_count, seed),
                SchemeConfig::spider_protocol(4),
                true,
            ),
            streaming: false,
        },
    ];
    if !quick {
        v.push(BenchCase {
            name: "ripple-lockstep-shortest",
            topology: "ripple-3774",
            mode: "lockstep",
            cfg: with_scheme(
                ripple_base(ripple_count, seed),
                SchemeConfig::ShortestPath,
                false,
            ),
            streaming: false,
        });
        v.push(BenchCase {
            name: "ripple-fifo-protocol",
            topology: "ripple-3774",
            mode: "per-channel-fifo",
            cfg: with_scheme(
                ripple_base(ripple_count, seed),
                SchemeConfig::spider_protocol(4),
                true,
            ),
            streaming: false,
        });
        // Paper scale: the full Ripple graph driven for the paper's own
        // 200 s horizon (~176k transactions at 75,000/85 tx/s), arrivals
        // streamed. No pre-refactor baseline exists at this scale — the
        // pre-seeded calendar alone made it impractical; these rows
        // demonstrate `peak_live_events` staying bounded by in-flight
        // work while the horizon grows 20×.
        let ripple_200s_count = (200.0 * 75_000.0 / 85.0) as usize;
        v.push(BenchCase {
            name: "ripple-200s-lockstep-shortest",
            topology: "ripple-3774",
            mode: "lockstep",
            cfg: with_scheme(
                ripple_base(ripple_200s_count, seed),
                SchemeConfig::ShortestPath,
                false,
            ),
            streaming: true,
        });
        v.push(BenchCase {
            name: "ripple-200s-fifo-protocol",
            topology: "ripple-3774",
            mode: "per-channel-fifo",
            cfg: with_scheme(
                ripple_base(ripple_200s_count, seed),
                SchemeConfig::spider_protocol(4),
                true,
            ),
            streaming: true,
        });
    }
    if quick {
        // The quick grid is CI smoke, not a timing trajectory: turn on
        // channel attribution there so `BENCH_engine.json` carries a
        // hotspot table to exercise `spider-report` against. Full rows
        // stay obs-free — they feed the wall-time baseline comparison.
        for case in &mut v {
            case.cfg.sim.obs.attribution = true;
        }
    }
    v
}

/// Builds everything outside the timed section, then times `sim.run()`.
fn run_case(case: &BenchCase) -> BenchRun {
    let cfg = &case.cfg;
    let rng = DetRng::new(cfg.seed);
    let topo = cfg.topology.build(&rng).expect("topology builds");
    let mut wrng = rng.fork("workload");
    let mut sim = if case.streaming {
        // Paper-scale rows: hand the engine the lazy generator. The
        // streamed schemes ignore the demand matrix, so nothing needs
        // the materialized list — enforce that, or a future
        // demand-dependent streaming case would silently solve over an
        // all-zero matrix.
        assert!(
            !matches!(cfg.scheme, SchemeConfig::SpiderLp { .. }),
            "streaming cases cannot use demand-dependent schemes ({}): \
             the demand matrix is left empty",
            cfg.scheme.name(),
        );
        let stream = StreamingWorkload::new(topo.node_count(), cfg.workload.clone(), wrng);
        let demands = spider_paygraph::PaymentGraph::new(topo.node_count());
        let router = cfg
            .scheme
            .build(&topo, &demands, cfg.sim.confirmation_delay.as_secs_f64());
        Simulation::new(topo, stream, router, cfg.effective_sim()).expect("simulation builds")
    } else {
        let workload = Workload::generate(topo.node_count(), &cfg.workload, &mut wrng);
        let demands = demand_graph(&workload, topo.node_count());
        let router = cfg
            .scheme
            .build(&topo, &demands, cfg.sim.confirmation_delay.as_secs_f64());
        Simulation::new(topo, workload, router, cfg.effective_sim()).expect("simulation builds")
    };
    let t0 = Instant::now();
    let report = sim.run();
    let wall_seconds = t0.elapsed().as_secs_f64();
    sim.check_conservation();
    BenchRun {
        case: case.name,
        topology: case.topology,
        mode: case.mode,
        scheme: report.scheme.clone(),
        wall_seconds,
        slab: sim.slab_stats(),
        report,
    }
}

/// Units the engine processed: lock attempts in lockstep mode, units
/// accepted for forwarding in queueing mode (`units_failed` is not added
/// there — it mixes ingress rejections with mid-path drops of units
/// already counted by `units_injected`).
fn units_processed(r: &BenchRun) -> u64 {
    match r.mode {
        "lockstep" => r.report.units_locked + r.report.units_failed,
        _ => r.slab.units_injected,
    }
}

/// The baseline record for a config name, if the committed baseline has
/// one: `(wall_seconds, completed, delivered_drops, units_locked)`.
fn baseline_for(name: &str) -> Option<(f64, u64, u64, u64)> {
    let root = serde_json::parse(BASELINE_JSON).ok()?;
    let runs = root["runs"].as_array()?;
    runs.iter()
        .find(|r| r["config"].as_str() == Some(name))
        .map(|r| {
            (
                r["wall_seconds"].as_f64().expect("baseline wall"),
                r["completed_payments"].as_u64().expect("baseline count"),
                r["delivered_drops"].as_u64().expect("baseline drops"),
                r["units_locked"].as_u64().expect("baseline units"),
            )
        })
}

fn json_record(r: &BenchRun, compare_baseline: bool, drifted: &mut bool) -> String {
    let events_per_sec = r.slab.events_executed as f64 / r.wall_seconds.max(1e-9);
    let units_per_sec = units_processed(r) as f64 / r.wall_seconds.max(1e-9);
    let mut s = String::new();
    write!(
        s,
        "{{\"config\":\"{}\",\"topology\":\"{}\",\"mode\":\"{}\",\"scheme\":\"{}\",\
         \"wall_seconds\":{:.4},\"events_executed\":{},\"events_per_sec\":{:.0},\
         \"units_processed\":{},\"units_per_sec\":{:.0},\
         \"peak_live_events\":{},\"peak_live_units\":{},\"interned_paths\":{},\
         \"attempted_payments\":{},\"completed_payments\":{},\"delivered_drops\":{},\
         \"units_locked\":{},\"units_failed\":{},\"units_dropped\":{},\"retries\":{}",
        r.case,
        r.topology,
        r.mode,
        r.scheme,
        r.wall_seconds,
        r.slab.events_executed,
        events_per_sec,
        units_processed(r),
        units_per_sec,
        r.slab.peak_live_events,
        r.slab.peak_live_units,
        r.slab.interned_paths,
        r.report.attempted_payments,
        r.report.completed_payments,
        r.report.delivered_volume.drops(),
        r.report.units_locked,
        r.report.units_failed,
        r.report.units_dropped,
        r.report.retries,
    )
    .expect("write to string");
    // Completion-latency percentiles from the report histogram (null when
    // nothing completed), the per-reason drop breakdown, and the channel
    // hotspot table (empty unless `obs.attribution` ran — the quick grid).
    let pct = |p: f64| {
        r.report
            .latency_hist
            .percentile(p)
            .map(|v| format!("{v:.6}"))
            .unwrap_or_else(|| "null".to_string())
    };
    let d = &r.report.drops_by_reason;
    write!(
        s,
        ",\"latency_p50_s\":{},\"latency_p99_s\":{},\
         \"drops_queue_timeout\":{},\"drops_queue_overflow\":{},\"drops_expired\":{},\
         \"drops_channel_closed\":{},\"drops_message_lost\":{},\"drops_hop_timeout\":{},\
         \"drops_node_crashed\":{},\"drops_shed\":{},\"drops_admission_rejected\":{},\
         \"hotspots\":{}",
        pct(50.0),
        pct(99.0),
        d.queue_timeout,
        d.queue_overflow,
        d.expired,
        d.channel_closed,
        d.message_lost,
        d.hop_timeout,
        d.node_crashed,
        d.shed,
        d.admission_rejected,
        spider_obs::attribution::hotspots_to_json_array(&r.report.hotspots),
    )
    .expect("write to string");
    // Quick runs trim the workload and non-default seeds change it, so
    // the recorded full-scale baseline only applies at seed 42.
    match compare_baseline.then(|| baseline_for(r.case)).flatten() {
        Some((base_wall, completed, delivered, locked)) => {
            // Identical workload + identical decisions ⇒ identical event
            // count, so events/sec speedup is the wall-time ratio.
            let baseline_eps = r.slab.events_executed as f64 / base_wall.max(1e-9);
            let matches = r.report.completed_payments == completed
                && r.report.delivered_volume.drops() == delivered
                && r.report.units_locked == locked;
            if !matches {
                *drifted = true;
                eprintln!(
                    "ERROR: {} outcomes drifted from the pre-refactor baseline \
                     (completed {} vs {}, delivered {} vs {}, locked {} vs {})",
                    r.case,
                    r.report.completed_payments,
                    completed,
                    r.report.delivered_volume.drops(),
                    delivered,
                    r.report.units_locked,
                    locked,
                );
            }
            write!(
                s,
                ",\"baseline_wall_seconds\":{:.4},\"baseline_events_per_sec\":{:.0},\
                 \"speedup\":{:.2},\"matches_baseline\":{}}}",
                base_wall,
                baseline_eps,
                base_wall / r.wall_seconds.max(1e-9),
                matches,
            )
        }
        None => write!(
            s,
            ",\"baseline_wall_seconds\":null,\"baseline_events_per_sec\":null,\
             \"speedup\":null,\"matches_baseline\":null}}"
        ),
    }
    .expect("write to string");
    s
}

/// `--trace-smoke`: run the quick ISP protocol case with payment
/// tracing on, emit both trace formats, and validate every JSONL line
/// parses with the expected envelope — the CI schema check. The same
/// config is re-run untraced and its outcomes must be bit-identical:
/// observation may cost time, never semantics. With `--full`, the case
/// is the paper-scale ripple-200s §5 protocol run instead (the full
/// 3,774-node graph, ~176k payments) — the acceptance check that
/// tracing survives paper scale; minutes of wall time, not CI material.
fn run_trace_smoke(seed: u64, out_dir: &PathBuf, full: bool) {
    let cfg = if full {
        let count = (200.0 * 75_000.0 / 85.0) as usize;
        with_scheme(
            ripple_base(count, seed),
            SchemeConfig::spider_protocol(4),
            true,
        )
    } else {
        with_scheme(
            isp_base(3_000, seed),
            SchemeConfig::spider_protocol(4),
            true,
        )
    };
    // The traced run also switches on channel attribution and the drop
    // flight recorder, so these asserts prove the *whole* observability
    // stack observes without perturbing: traced+attributed+forensics
    // outcomes must be bit-identical to the bare run.
    let mut ocfg = cfg.clone();
    ocfg.sim.obs.attribution = true;
    ocfg.sim.obs.forensics_capacity = 4_096;
    let (report, trace) = ocfg.run_traced().expect("traced run");
    let untraced = cfg.run().expect("untraced run");
    assert_eq!(
        report.completed_payments, untraced.completed_payments,
        "tracing changed completion counts"
    );
    assert_eq!(
        report.delivered_volume, untraced.delivered_volume,
        "tracing changed delivered volume"
    );
    assert_eq!(
        report.units_locked, untraced.units_locked,
        "tracing changed unit accounting"
    );
    assert_eq!(
        report.units_dropped, untraced.units_dropped,
        "observability changed drop accounting"
    );
    let jsonl = trace.to_jsonl();
    let mut arrivals = 0u64;
    let mut completes = 0u64;
    for line in jsonl.lines() {
        let v = serde_json::parse(line).expect("trace line is valid JSON");
        let ev = v["ev"].as_str().expect("every line carries an ev tag");
        if ev != "path" {
            v["seq"].as_u64().expect("event lines carry seq");
            v["t_us"].as_u64().expect("event lines carry t_us");
        }
        match ev {
            "arrival" => arrivals += 1,
            "complete" => completes += 1,
            _ => {}
        }
    }
    assert_eq!(
        arrivals, report.attempted_payments,
        "one arrival per payment"
    );
    assert_eq!(
        completes, report.completed_payments,
        "one complete per completion"
    );
    let chrome = trace.to_chrome_trace();
    serde_json::parse(&chrome).expect("chrome trace is valid JSON");
    std::fs::create_dir_all(out_dir).expect("create output directory");
    std::fs::write(out_dir.join("trace_smoke.jsonl"), &jsonl).expect("write trace jsonl");
    std::fs::write(out_dir.join("trace_smoke_chrome.json"), &chrome).expect("write chrome trace");
    eprintln!(
        "trace smoke ok: {} events ({} arrivals, {} completions), wrote {}/trace_smoke{{.jsonl,_chrome.json}}",
        trace.len(),
        arrivals,
        completes,
        out_dir.display()
    );
}

/// `--monitor-smoke`: run the quick ISP §5-protocol case under real
/// overload (a flash crowd past the admission rate, tight queues so
/// shedding actually evicts) twice — once with the runtime invariant
/// monitor auditing at a tight cadence, once with it off — and require
/// the two reports to serialize bit-for-bit identically: the monitor
/// observes conservation, queue accounting and drop bookkeeping, it
/// never steers. Panics (the monitor's own job) or any report delta
/// fail the smoke.
fn run_monitor_smoke(seed: u64) {
    let mut cfg = with_scheme(
        isp_base(3_000, seed),
        SchemeConfig::spider_protocol(4),
        true,
    );
    cfg.sim.queueing = QueueingMode::PerChannelFifo(QueueConfig {
        max_queue_units: 64,
        ..QueueConfig::default()
    });
    cfg.sim.shedding = true;
    cfg.sim.admission = Some(spider_sim::AdmissionConfig::default());
    cfg.overload = Some(spider_overload::OverloadConfig {
        flash_crowd: Some(spider_overload::FlashCrowdConfig {
            start_secs: 1.0,
            duration_secs: 1.0,
            rate_multiplier: 4.0,
        }),
        horizon_secs: cfg.sim.horizon.as_secs_f64(),
        ..spider_overload::OverloadConfig::default()
    });
    let mut monitored_cfg = cfg.clone();
    monitored_cfg.sim.obs.invariants_every = 64;
    let monitored = monitored_cfg.run().expect("monitored run");
    let bare = cfg.run().expect("unmonitored run");
    let m = serde_json::to_string(&monitored).expect("report serializes");
    let b = serde_json::to_string(&bare).expect("report serializes");
    assert_eq!(m, b, "the invariant monitor changed the report");
    assert!(
        monitored.drops_by_reason.admission_rejected > 0,
        "monitor smoke never tripped admission control — not auditing overload"
    );
    eprintln!(
        "monitor smoke ok: monitored == unmonitored bit-for-bit \
         ({} payments, {} shed, {} admission-rejected)",
        monitored.attempted_payments,
        monitored.drops_by_reason.shed,
        monitored.drops_by_reason.admission_rejected,
    );
}

fn main() {
    let mut quick = false;
    let mut full = false;
    let mut trace_smoke = false;
    let mut monitor_smoke = false;
    let mut seed = 42u64;
    let mut out_dir = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--full" => full = true,
            "--trace-smoke" => trace_smoke = true,
            "--monitor-smoke" => monitor_smoke = true,
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed requires an integer");
            }
            "--out" => out_dir = PathBuf::from(args.next().expect("--out requires a path")),
            "--help" | "-h" => {
                eprintln!(
                    "options: --quick  --trace-smoke [--full]  --monitor-smoke  --seed N  --out DIR"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown option {other}; try --help");
                std::process::exit(2);
            }
        }
    }
    if trace_smoke {
        run_trace_smoke(seed, &out_dir, full);
        return;
    }
    if monitor_smoke {
        run_monitor_smoke(seed);
        return;
    }
    if full {
        eprintln!("--full only applies to --trace-smoke; the default grid is already full-scale");
        std::process::exit(2);
    }
    let compare_baseline = !quick && seed == 42;
    if !quick && seed != 42 {
        eprintln!("note: the baseline was recorded at seed 42; skipping baseline comparison");
    }

    let mut records = Vec::new();
    let mut speedups: Vec<f64> = Vec::new();
    let mut drifted = false;
    for case in cases(seed, quick) {
        eprintln!("running {}…", case.name);
        let run = run_case(&case);
        let eps = run.slab.events_executed as f64 / run.wall_seconds.max(1e-9);
        let speedup = compare_baseline
            .then(|| baseline_for(run.case))
            .flatten()
            .map(|(base_wall, ..)| base_wall / run.wall_seconds.max(1e-9));
        eprintln!(
            "  {}: {:.2}s wall, {:.0} events/s, peak live events {}, peak live units {}{}",
            run.case,
            run.wall_seconds,
            eps,
            run.slab.peak_live_events,
            run.slab.peak_live_units,
            speedup
                .map(|s| format!(", {s:.2}x vs pre-refactor"))
                .unwrap_or_default(),
        );
        if let Some(s) = speedup {
            speedups.push(s);
        }
        records.push(json_record(&run, compare_baseline, &mut drifted));
    }
    let geomean = (!speedups.is_empty()).then(|| {
        let log_sum: f64 = speedups.iter().map(|s| s.ln()).sum();
        (log_sum / speedups.len() as f64).exp()
    });
    let doc = format!(
        "{{\"bench\":\"engine_throughput\",\"seed\":{seed},\"quick\":{quick},\
         \"geomean_speedup\":{},\"runs\":[\n{}\n]}}\n",
        geomean
            .map(|g| format!("{g:.2}"))
            .unwrap_or_else(|| "null".to_string()),
        records.join(",\n"),
    );
    print!("{doc}");
    if let Some(g) = geomean {
        eprintln!("geomean speedup vs pre-refactor baseline: {g:.2}x");
    }
    // Phase breakdown, from separate profiled reruns on the quick grid so
    // the profiling clocks never touch the timed sections above.
    eprintln!("engine phase breakdown (profiled rerun, quick grid):");
    for mut case in cases(seed, true) {
        case.cfg.sim.obs.profile = true;
        let run = run_case(&case);
        eprintln!("  {}: {}", run.case, run.report.profile.summary());
    }
    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let path = out_dir.join("BENCH_engine.json");
    std::fs::write(&path, &doc).expect("write BENCH_engine.json");
    eprintln!("wrote {}", path.display());
    // Validate that what we wrote parses (the CI smoke step relies on it).
    serde_json::parse(&doc).expect("BENCH_engine.json is well-formed JSON");
    // A perf benchmark whose outcomes drifted from the recorded baseline
    // is measuring a *different* simulation: fail loudly (at seed 42 only
    // — other seeds run different workloads than the baseline recorded).
    if drifted {
        eprintln!("engine outcomes no longer match the pre-refactor baseline; failing");
        std::process::exit(1);
    }
}
