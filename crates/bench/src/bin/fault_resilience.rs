//! Scheme resilience under deterministic fault injection (`spider-faults`).
//!
//! Runs every registered scheme ([`SchemeConfig::extended_lineup`]) on the
//! ISP and Ripple-like topologies across a sweep of fault intensities
//! (`0 ×` = the paper's fault-free evaluation, then increasingly hostile
//! plans of per-channel message loss, lost acks, stuck units, latency
//! jitter/spikes and node crash/recovery windows), all on the identical
//! workload and seed per topology, fanned through [`run_sweep`].
//!
//! Output: the usual `FigureRow` CSV/JSONL schema (`parameter =
//! fault_intensity`, with the `units_dropped_fault` and `retries` columns
//! doing the talking), plus per-run fault detail on stderr — injected
//! faults, the drop breakdown by fault reason, and crash events fired.
//!
//! Expected shape: schemes with sender-side failover (the backoff layer
//! cools faulted paths and retries on alternates) hold their success ratio
//! far better than a fault-oblivious sender would; the single-path
//! shortest-path baseline leans hardest on its lazily-built alternate set.
//!
//! ```sh
//! cargo run --release -p spider-bench --bin fault_resilience -- --out out
//! cargo run --release -p spider-bench --bin fault_resilience -- --smoke --out out  # CI
//! ```

use spider_bench::{emit, isp_experiment, ripple_experiment, HarnessArgs};
use spider_core::output::FigureRow;
use spider_core::{run_sweep, ExperimentConfig, SchemeConfig, SweepJob};
use spider_faults::FaultConfig;
use spider_sim::SimReport;

/// The base (1×) fault plan the intensity knob scales. The crate default
/// is already paper-plausible; only the horizon is pinned to the
/// experiment's so crash windows cover the whole run.
fn base_faults(horizon_secs: f64) -> FaultConfig {
    FaultConfig {
        horizon_secs,
        ..FaultConfig::default()
    }
}

fn scaled_experiment(base: &ExperimentConfig, intensity: f64) -> ExperimentConfig {
    let horizon = base.sim.horizon.as_secs_f64();
    ExperimentConfig {
        faults: (intensity > 0.0).then(|| base_faults(horizon).scaled(intensity)),
        ..base.clone()
    }
}

fn report_detail(r: &SimReport, intensity: f64) {
    if r.faults_injected == 0 && r.fault_events == 0 {
        return;
    }
    eprintln!(
        "  {:<22} x{intensity}: injected={} dropped_fault={} \
         (lost={} timeout={} crashed={}) crash_events={} retries={}",
        r.scheme,
        r.faults_injected,
        r.units_dropped_fault,
        r.drops_by_reason.message_lost,
        r.drops_by_reason.hop_timeout,
        r.drops_by_reason.node_crashed,
        r.fault_events,
        r.retries,
    );
}

fn main() {
    let args = HarnessArgs::parse();
    let intensities = [0.0, 0.5, 1.0, 2.0];
    let schemes = SchemeConfig::extended_lineup();
    let mut rows: Vec<FigureRow> = Vec::new();

    for (label, mut base) in [
        ("fault-isp", isp_experiment(4_000, args.full, args.seed)),
        (
            "fault-ripple",
            ripple_experiment(4_000, args.full, args.seed),
        ),
    ] {
        if args.smoke {
            // CI scale: a few seconds per topology while still injecting
            // real faults into every scheme.
            base.workload.count = 800;
            base.sim.horizon =
                spider_types::SimDuration::from_secs_f64(800.0 / base.workload.rate_per_sec + 1.0);
            if let spider_core::TopologyConfig::RippleLike { nodes, .. } = &mut base.topology {
                *nodes = 120;
            }
        }
        // Phase timings ride along in every row (the profile_*_s JSONL
        // columns); the wall clocks never touch simulated time.
        base.sim.obs.profile = true;
        eprintln!(
            "running {label} ({} txns, {} schemes x {} intensities)…",
            base.workload.count,
            schemes.len(),
            intensities.len()
        );
        let base = &base;
        let jobs: Vec<SweepJob> = intensities
            .iter()
            .flat_map(|&i| {
                schemes.iter().map(move |&scheme| {
                    SweepJob::Scheme(ExperimentConfig {
                        scheme,
                        ..scaled_experiment(base, i)
                    })
                })
            })
            .collect();
        let reports = run_sweep(&jobs).expect("experiments run");
        for (j, r) in reports.iter().enumerate() {
            let intensity = intensities[j / schemes.len()];
            let row = FigureRow::new(label, "fault_intensity", intensity, r);
            println!("{}", spider_core::output::to_csv_row(&row));
            report_detail(r, intensity);
            rows.push(row);
        }
    }

    emit("fault_resilience", &rows, &args.out_dir);
}
