//! Scheme resilience under deterministic fault injection (`spider-faults`).
//!
//! Runs every registered scheme ([`SchemeConfig::extended_lineup`]) on the
//! ISP and Ripple-like topologies across a sweep of fault intensities
//! (`0 ×` = the paper's fault-free evaluation, then increasingly hostile
//! plans of per-channel message loss, lost acks, stuck units, latency
//! jitter/spikes and node crash/recovery windows), all on the identical
//! workload and seed per topology, fanned through [`ResilienceSweep`].
//!
//! Output: the usual `FigureRow` CSV/JSONL schema (`parameter =
//! fault_intensity`, with the `units_dropped_fault` and `retries` columns
//! doing the talking), plus per-run fault detail on stderr — injected
//! faults, the drop breakdown by fault reason, and crash events fired.
//!
//! Expected shape: schemes with sender-side failover (the backoff layer
//! cools faulted paths and retries on alternates) hold their success ratio
//! far better than a fault-oblivious sender would; the single-path
//! shortest-path baseline leans hardest on its lazily-built alternate set.
//!
//! ```sh
//! cargo run --release -p spider-bench --bin fault_resilience -- --out out
//! cargo run --release -p spider-bench --bin fault_resilience -- --smoke --out out  # CI
//! ```

use spider_bench::{emit, HarnessArgs, ResilienceSweep};
use spider_core::{ExperimentConfig, SchemeConfig};
use spider_faults::FaultConfig;
use spider_sim::SimReport;

/// The base (1×) fault plan the intensity knob scales. The crate default
/// is already paper-plausible; only the horizon is pinned to the
/// experiment's so crash windows cover the whole run.
fn base_faults(horizon_secs: f64) -> FaultConfig {
    FaultConfig {
        horizon_secs,
        ..FaultConfig::default()
    }
}

fn scaled_experiment(base: &ExperimentConfig, intensity: f64) -> ExperimentConfig {
    let horizon = base.sim.horizon.as_secs_f64();
    ExperimentConfig {
        faults: (intensity > 0.0).then(|| base_faults(horizon).scaled(intensity)),
        ..base.clone()
    }
}

fn report_detail(r: &SimReport, intensity: f64) {
    if r.faults_injected == 0 && r.fault_events == 0 {
        return;
    }
    eprintln!(
        "  {:<22} x{intensity}: injected={} dropped_fault={} \
         (lost={} timeout={} crashed={}) crash_events={} retries={}",
        r.scheme,
        r.faults_injected,
        r.units_dropped_fault,
        r.drops_by_reason.message_lost,
        r.drops_by_reason.hop_timeout,
        r.drops_by_reason.node_crashed,
        r.fault_events,
        r.retries,
    );
}

fn main() {
    let args = HarnessArgs::parse();
    let schemes = SchemeConfig::extended_lineup();
    let rows = ResilienceSweep {
        labels: ["fault-isp", "fault-ripple"],
        parameter: "fault_intensity",
        capacity_xrp: 4_000,
        intensities: &[0.0, 0.5, 1.0, 2.0],
        schemes: &schemes,
    }
    .run(&args, |_, _| {}, scaled_experiment, report_detail);
    emit("fault_resilience", &rows, &args.out_dir);
}
