//! §6.2 ablation — what does packet switching buy?
//!
//! "Splitting the payments into transaction units and scheduling them
//! according to SRPT already provides a 10 % increase in success ratio
//! over SpeedyMurmurs and SilentWhispers even for the shortest path
//! routing scheme."
//!
//! This binary isolates the two transport mechanisms on the ISP topology
//! with shortest-path routing held fixed:
//!
//! 1. **packet switching** (non-atomic, MTU units, retries) vs the same
//!    scheme's atomic all-or-nothing variant;
//! 2. the **scheduling policy** of the pending queue (SRPT vs FIFO vs
//!    LIFO vs EDF vs anti-SRPT).

use spider_bench::{emit, isp_experiment, HarnessArgs};
use spider_core::output::FigureRow;
use spider_core::SchemeConfig;
use spider_sim::SchedulingPolicy;

fn main() {
    let args = HarnessArgs::parse();
    let mut rows: Vec<FigureRow> = Vec::new();

    // Packet-switched shortest path (paper's baseline)…
    let cfg = isp_experiment(30_000, args.full, args.seed);
    eprintln!("running packet-switched shortest path…");
    let packet = cfg.clone().run().expect("runs");
    rows.push(FigureRow::new(
        "ablation-transport",
        "packet_switched",
        1.0,
        &packet,
    ));

    // …vs the atomic comparison points (SilentWhispers, SpeedyMurmurs).
    for scheme in [
        SchemeConfig::SilentWhispers { landmarks: 3 },
        SchemeConfig::SpeedyMurmurs { trees: 3 },
    ] {
        eprintln!("running atomic {}…", scheme.name());
        let mut c = cfg.clone();
        c.scheme = scheme;
        let r = c.run().expect("runs");
        rows.push(FigureRow::new(
            "ablation-transport",
            "packet_switched",
            0.0,
            &r,
        ));
    }

    // Scheduling-policy ablation, shortest-path held fixed.
    for (policy, tag) in [
        (SchedulingPolicy::Srpt, "srpt"),
        (SchedulingPolicy::Fifo, "fifo"),
        (SchedulingPolicy::Lifo, "lifo"),
        (SchedulingPolicy::EarliestDeadline, "edf"),
        (SchedulingPolicy::LargestRemaining, "anti-srpt"),
    ] {
        eprintln!("running scheduling policy {tag}…");
        let mut c = cfg.clone();
        c.sim.scheduling = policy;
        let mut r = c.run().expect("runs");
        r.scheme = format!("shortest-path/{tag}");
        rows.push(FigureRow::new("ablation-sched", "policy", 0.0, &r));
    }

    emit("ablation_packet_switching", &rows, &args.out_dir);

    // The §6.2 claim: packet switching lifts shortest-path above the
    // atomic schemes' success ratio.
    let atomic_best = rows[1].success_ratio_pct.max(rows[2].success_ratio_pct);
    println!(
        "packet-switched shortest path: {:.1}% vs best atomic scheme: {:.1}% (paper: ≈ +10%)",
        rows[0].success_ratio_pct, atomic_best
    );
}
