//! §5.3 — convergence of the decentralized primal-dual algorithm.
//!
//! "Using standard arguments, it can be shown that for sufficiently small
//! step sizes, the above algorithm converges to the optimal solution."
//!
//! Runs eqs. (21)–(24) on the §5.1 example and on random instances,
//! printing the throughput trajectory against the simplex optimum and the
//! final relative error.

use spider_bench::HarnessArgs;
use spider_lp::fluid::{FluidProblem, PathSelection};
use spider_lp::primal_dual::{solve_problem, PrimalDualConfig};
use spider_paygraph::{examples, generate};
use spider_topology::gen;
use spider_types::{Amount, DetRng};

fn main() {
    let args = HarnessArgs::parse();
    let cap = Amount::from_xrp(1_000_000);
    let delta = 0.5;

    // --- Paper example ---
    let topo = gen::paper_example_topology(cap);
    let demands = examples::paper_example_demands();
    let problem = FluidProblem::new(&topo, &demands, delta, PathSelection::KShortest(4));
    let lp = problem.solve_balanced().expect("simplex solves").throughput;
    let mut cfg = PrimalDualConfig::for_demand_scale(2.0);
    cfg.iterations = if args.full { 200_000 } else { 60_000 };
    cfg.sample_every = cfg.iterations / 20;
    let pd = solve_problem(&topo, &demands, delta, &problem, &cfg);
    println!("paper-example: simplex optimum = {lp:.4}");
    println!("{:>10} {:>14}", "iteration", "throughput");
    for (it, thr) in &pd.trajectory {
        println!("{it:>10} {thr:>14.4}");
    }
    let rel_err = (pd.throughput - lp).abs() / lp;
    println!(
        "final (tail-averaged) throughput = {:.4}, relative error = {:.2}%",
        pd.throughput,
        100.0 * rel_err
    );
    assert!(
        rel_err < 0.05,
        "primal-dual should converge within 5% of the LP optimum"
    );

    // --- Random instances ---
    let mut rng = DetRng::new(args.seed);
    let trials = if args.full { 10 } else { 4 };
    println!("\nrandom instances (cycle topology, mixed demand):");
    println!(
        "{:>5} {:>12} {:>12} {:>10}",
        "trial", "simplex", "primal-dual", "rel-err%"
    );
    for trial in 0..trials {
        let n = 6;
        let topo = gen::cycle(n, cap);
        let demands = generate::mixed_demand(n, 6.0, 0.5 + 0.5 * rng.uniform(), &mut rng);
        let problem = FluidProblem::new(&topo, &demands, delta, PathSelection::KShortest(3));
        let lp = problem.solve_balanced().expect("simplex solves").throughput;
        let mut cfg = PrimalDualConfig::for_demand_scale(2.0);
        cfg.iterations = if args.full { 200_000 } else { 80_000 };
        let pd = solve_problem(&topo, &demands, delta, &problem, &cfg);
        let err = if lp > 1e-9 {
            (pd.throughput - lp).abs() / lp
        } else {
            pd.throughput.abs()
        };
        println!(
            "{trial:>5} {lp:>12.4} {:>12.4} {:>10.2}",
            pd.throughput,
            100.0 * err
        );
        assert!(err < 0.15, "trial {trial}: primal-dual error too large");
    }
    println!("\ndecentralized algorithm converges to the LP optimum ✓");
}
