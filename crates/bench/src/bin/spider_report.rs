//! `spider-report`: diff two bench artifacts and gate on regressions.
//!
//! ```sh
//! spider-report <baseline> <candidate> [--rel-tol F] [--abs-tol F]
//! ```
//!
//! Two artifact shapes are understood, picked by file extension:
//!
//! * `.json` — `BENCH_engine.json`-shaped documents (a top-level `runs`
//!   array of per-config records);
//! * `.jsonl` — `FigureRow` JSON-lines as written by the sweep bins
//!   (`fig6_success`, `churn_resilience`, `fault_resilience`,
//!   `overload_resilience`, …), one record per line, keyed by
//!   `experiment/scheme@parameter=value`.
//!
//! Each record is reduced to a [`RunRecord`]: deterministic outcome
//! fields (payments, units, drops, latency percentiles, the per-reason
//! drop breakdown) become *gated* metrics, wall-clock-dependent fields
//! (wall seconds, rates, speedups, profile phase timings) become
//! *informational*, and hotspot attribution collapses to its channel-id
//! set. The diff prints one line per finding (`GATE …` / `info …`) and
//! exits:
//!
//! * `0` — clean: same runs, no gated delta above tolerance, identical
//!   hotspot sets (informational drift allowed and reported);
//! * `1` — at least one gated difference;
//! * `2` — usage or I/O error (unreadable file, malformed JSON).
//!
//! With zero tolerances (the default) any change to a deterministic
//! field gates — the right bar for same-seed comparisons, and what the
//! CI regression gate over the quick-grid artifact uses.

use spider_obs::report::{diff_runs, DiffThresholds, RunRecord};
use std::process::ExitCode;

/// Deterministic per-run outcome fields: any above-tolerance change is a
/// regression (or at least a semantics change that needs a fresh
/// baseline).
const GATED: &[&str] = &[
    "events_executed",
    "attempted_payments",
    "completed_payments",
    "delivered_drops",
    "units_processed",
    "units_locked",
    "units_failed",
    "units_dropped",
    "retries",
    "peak_live_events",
    "peak_live_units",
    "interned_paths",
    "latency_p50_s",
    "latency_p99_s",
    "drops_queue_timeout",
    "drops_queue_overflow",
    "drops_expired",
    "drops_channel_closed",
    "drops_message_lost",
    "drops_hop_timeout",
    "drops_node_crashed",
    "drops_shed",
    "drops_admission_rejected",
];

/// Wall-clock-dependent fields: reported when they drift, never gating.
const INFO: &[&str] = &[
    "wall_seconds",
    "events_per_sec",
    "units_per_sec",
    "baseline_wall_seconds",
    "baseline_events_per_sec",
    "speedup",
];

/// Deterministic `FigureRow` outcome fields (JSONL artifacts).
const ROW_GATED: &[&str] = &[
    "success_ratio_pct",
    "success_volume_pct",
    "goodput_xrp_s",
    "completed",
    "attempted",
    "units_dropped_fault",
    "units_dropped_shed",
    "units_dropped_admission",
    "admission_deferred",
    "retries",
    "avg_completion_s",
    "latency_p50_s",
    "latency_p99_s",
];

/// Wall-clock `FigureRow` fields: phase profile timings.
const ROW_INFO: &[&str] = &[
    "profile_calendar_pop_s",
    "profile_routing_s",
    "profile_forwarding_s",
    "profile_settlement_s",
    "profile_churn_repair_s",
    "profile_sampling_s",
];

/// Parses a `FigureRow` JSON-lines artifact (sweep bins) into run
/// records, one per line, in document order.
fn parse_jsonl_artifact(path: &str, text: &str) -> Result<Vec<RunRecord>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let r = serde_json::parse(line)
            .map_err(|e| format!("{path}: line {}: malformed JSON: {e}", i + 1))?;
        let field = |k: &str| -> Result<String, String> {
            r[k].as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("{path}: line {}: no \"{k}\" field", i + 1))
        };
        let mut rec = RunRecord {
            name: format!(
                "{}/{}@{}={}",
                field("experiment")?,
                field("scheme")?,
                field("parameter")?,
                r["value"].as_f64().unwrap_or(0.0),
            ),
            ..RunRecord::default()
        };
        for &m in ROW_GATED {
            if let Some(v) = r[m].as_f64() {
                rec.gated.push((m.to_string(), v));
            }
        }
        for &m in ROW_INFO {
            if let Some(v) = r[m].as_f64() {
                rec.info.push((m.to_string(), v));
            }
        }
        if let Some(c) = r["hotspot_channel"].as_u64() {
            rec.hotspots.push(c as u32);
        }
        out.push(rec);
    }
    Ok(out)
}

/// Parses one artifact into run records, in document order. `.jsonl`
/// inputs are `FigureRow` lines; anything else is an engine-benchmark
/// `runs` document.
fn parse_artifact(path: &str) -> Result<Vec<RunRecord>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if path.ends_with(".jsonl") {
        return parse_jsonl_artifact(path, &text);
    }
    let root = serde_json::parse(&text).map_err(|e| format!("{path}: malformed JSON: {e}"))?;
    let runs = root["runs"]
        .as_array()
        .ok_or_else(|| format!("{path}: no top-level \"runs\" array"))?;
    let mut out = Vec::with_capacity(runs.len());
    for (i, r) in runs.iter().enumerate() {
        let name = r["config"]
            .as_str()
            .ok_or_else(|| format!("{path}: runs[{i}] has no \"config\" name"))?
            .to_string();
        let mut rec = RunRecord {
            name,
            ..RunRecord::default()
        };
        // Absent or null fields are skipped on both sides; the diff core
        // gates when a metric exists on only one side.
        for &m in GATED {
            if let Some(v) = r[m].as_f64() {
                rec.gated.push((m.to_string(), v));
            }
        }
        for &m in INFO {
            if let Some(v) = r[m].as_f64() {
                rec.info.push((m.to_string(), v));
            }
        }
        if let Some(hs) = r["hotspots"].as_array() {
            for h in hs {
                if let Some(c) = h["channel"].as_u64() {
                    rec.hotspots.push(c as u32);
                }
            }
        }
        out.push(rec);
    }
    Ok(out)
}

fn usage() -> ExitCode {
    eprintln!("usage: spider-report <baseline> <candidate> [--rel-tol F] [--abs-tol F]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut paths: Vec<String> = Vec::new();
    let mut th = DiffThresholds::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--rel-tol" => {
                let Some(v) = args.next().and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                th.rel_tol = v;
            }
            "--abs-tol" => {
                let Some(v) = args.next().and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                th.abs_tol = v;
            }
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown option {other}");
                return usage();
            }
            other => paths.push(other.to_string()),
        }
    }
    let [baseline_path, candidate_path] = paths.as_slice() else {
        return usage();
    };
    let (baseline, candidate) = match (
        parse_artifact(baseline_path),
        parse_artifact(candidate_path),
    ) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("spider-report: {e}");
            return ExitCode::from(2);
        }
    };
    let diff = diff_runs(&baseline, &candidate, th);
    print!("{}", diff.render());
    if diff.is_clean() {
        eprintln!(
            "spider-report: clean ({} runs compared{})",
            baseline.len(),
            if diff.info_changes.is_empty() {
                ""
            } else {
                ", informational drift only"
            }
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "spider-report: {} gated difference(s)",
            diff.missing_runs.len()
                + diff.new_runs.len()
                + diff.regressions.len()
                + diff.hotspot_changes.len()
        );
        ExitCode::FAILURE
    }
}
