//! `spider-report`: diff two bench JSON artifacts and gate on regressions.
//!
//! ```sh
//! spider-report <baseline.json> <candidate.json> [--rel-tol F] [--abs-tol F]
//! ```
//!
//! Both inputs are `BENCH_engine.json`-shaped documents (a top-level
//! `runs` array of per-config records). Each record is reduced to a
//! [`RunRecord`]: deterministic outcome fields (payments, units, drops,
//! latency percentiles, the per-reason drop breakdown) become *gated*
//! metrics, wall-clock-dependent fields (wall seconds, rates, speedups)
//! become *informational*, and the hotspot table collapses to its
//! channel-id set. The diff prints one line per finding (`GATE …` /
//! `info …`) and exits:
//!
//! * `0` — clean: same runs, no gated delta above tolerance, identical
//!   hotspot sets (informational drift allowed and reported);
//! * `1` — at least one gated difference;
//! * `2` — usage or I/O error (unreadable file, malformed JSON).
//!
//! With zero tolerances (the default) any change to a deterministic
//! field gates — the right bar for same-seed comparisons, and what the
//! CI regression gate over the quick-grid artifact uses.

use spider_obs::report::{diff_runs, DiffThresholds, RunRecord};
use std::process::ExitCode;

/// Deterministic per-run outcome fields: any above-tolerance change is a
/// regression (or at least a semantics change that needs a fresh
/// baseline).
const GATED: &[&str] = &[
    "events_executed",
    "attempted_payments",
    "completed_payments",
    "delivered_drops",
    "units_processed",
    "units_locked",
    "units_failed",
    "units_dropped",
    "retries",
    "peak_live_events",
    "peak_live_units",
    "interned_paths",
    "latency_p50_s",
    "latency_p99_s",
    "drops_queue_timeout",
    "drops_queue_overflow",
    "drops_expired",
    "drops_channel_closed",
    "drops_message_lost",
    "drops_hop_timeout",
    "drops_node_crashed",
];

/// Wall-clock-dependent fields: reported when they drift, never gating.
const INFO: &[&str] = &[
    "wall_seconds",
    "events_per_sec",
    "units_per_sec",
    "baseline_wall_seconds",
    "baseline_events_per_sec",
    "speedup",
];

/// Parses one artifact into run records, in document order.
fn parse_artifact(path: &str) -> Result<Vec<RunRecord>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let root = serde_json::parse(&text).map_err(|e| format!("{path}: malformed JSON: {e}"))?;
    let runs = root["runs"]
        .as_array()
        .ok_or_else(|| format!("{path}: no top-level \"runs\" array"))?;
    let mut out = Vec::with_capacity(runs.len());
    for (i, r) in runs.iter().enumerate() {
        let name = r["config"]
            .as_str()
            .ok_or_else(|| format!("{path}: runs[{i}] has no \"config\" name"))?
            .to_string();
        let mut rec = RunRecord {
            name,
            ..RunRecord::default()
        };
        // Absent or null fields are skipped on both sides; the diff core
        // gates when a metric exists on only one side.
        for &m in GATED {
            if let Some(v) = r[m].as_f64() {
                rec.gated.push((m.to_string(), v));
            }
        }
        for &m in INFO {
            if let Some(v) = r[m].as_f64() {
                rec.info.push((m.to_string(), v));
            }
        }
        if let Some(hs) = r["hotspots"].as_array() {
            for h in hs {
                if let Some(c) = h["channel"].as_u64() {
                    rec.hotspots.push(c as u32);
                }
            }
        }
        out.push(rec);
    }
    Ok(out)
}

fn usage() -> ExitCode {
    eprintln!("usage: spider-report <baseline.json> <candidate.json> [--rel-tol F] [--abs-tol F]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut paths: Vec<String> = Vec::new();
    let mut th = DiffThresholds::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--rel-tol" => {
                let Some(v) = args.next().and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                th.rel_tol = v;
            }
            "--abs-tol" => {
                let Some(v) = args.next().and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                th.abs_tol = v;
            }
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown option {other}");
                return usage();
            }
            other => paths.push(other.to_string()),
        }
    }
    let [baseline_path, candidate_path] = paths.as_slice() else {
        return usage();
    };
    let (baseline, candidate) = match (
        parse_artifact(baseline_path),
        parse_artifact(candidate_path),
    ) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("spider-report: {e}");
            return ExitCode::from(2);
        }
    };
    let diff = diff_runs(&baseline, &candidate, th);
    print!("{}", diff.render());
    if diff.is_clean() {
        eprintln!(
            "spider-report: clean ({} runs compared{})",
            baseline.len(),
            if diff.info_changes.is_empty() {
                ""
            } else {
                ", informational drift only"
            }
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "spider-report: {} gated difference(s)",
            diff.missing_runs.len()
                + diff.new_runs.len()
                + diff.regressions.len()
                + diff.hotspot_changes.len()
        );
        ExitCode::FAILURE
    }
}
