//! Fig. 8 (this reproduction's extension of the Fig. 6 comparison) — the
//! §5 decentralized protocol under router queueing vs the transport-layer
//! baselines, on the fig6 topologies at 30,000 XRP per channel.
//!
//! Four runs per topology, all on the identical workload and seed,
//! dispatched together through [`run_sweep`]:
//!
//! * `spider-protocol` — queues + price marking + per-path AIMD
//!   (`QueueingMode::PerChannelFifo`);
//! * `shortest-path+window` — the coarse per-pair AIMD window over the
//!   packet-switched shortest-path baseline, same queueing mode (the
//!   controller `spider-protocol` replaces);
//! * `spider-waterfilling+window` — the same window over balance-probing
//!   waterfilling (an upper baseline: it reads live balances at every
//!   attempt, which §5's decentralized senders cannot);
//! * `shortest-path` — plain lockstep shortest-path for reference.
//!
//! Expected shape: `spider-protocol` clearly above `shortest-path+window`
//! and plain `shortest-path` (queues absorb bursts; marking prevents
//! collapse), approaching `spider-waterfilling+window` from below.
//!
//! Emits the same CSV/JSONL `FigureRow` schema as `fig6_success`, so
//! results are machine-comparable across PRs.
//!
//! `SPIDER_FIG8_SWEEP=1` additionally sweeps the protocol's AIMD step
//! parameters (`SchemeConfig::SpiderProtocol { tuning }`) on the ISP
//! topology — a (increase × decrease-factor) grid emitted as
//! `fig8_aimd_sweep` rows, the first step on the ROADMAP
//! rate-control-tuning item.

use spider_bench::{emit, isp_experiment, ripple_experiment, HarnessArgs};
use spider_core::congestion::{WindowConfig, Windowed};
use spider_core::output::FigureRow;
use spider_core::scheme::ProtocolTuning;
use spider_core::{run_sweep, ExperimentConfig, SchemeConfig, SweepJob};
use spider_routing::{ShortestPath, SpiderWaterfilling};
use spider_sim::{QueueConfig, QueueingMode};

/// The AIMD (additive increase XRP × multiplicative decrease) grid swept
/// by `SPIDER_FIG8_SWEEP=1`, bracketing the defaults (10, 0.7).
const SWEEP_INCREASE_XRP: [f64; 3] = [5.0, 10.0, 20.0];
const SWEEP_DECREASE: [f64; 3] = [0.5, 0.7, 0.9];

fn aimd_sweep(base: &ExperimentConfig, rows: &mut Vec<FigureRow>) {
    let mut jobs = Vec::new();
    let mut labels = Vec::new();
    for inc in SWEEP_INCREASE_XRP {
        for dec in SWEEP_DECREASE {
            let mut cfg = base.clone();
            cfg.scheme = SchemeConfig::SpiderProtocol {
                paths: 4,
                tuning: Some(ProtocolTuning {
                    increase_xrp: Some(inc),
                    decrease_factor: Some(dec),
                    ..ProtocolTuning::default()
                }),
            };
            jobs.push(SweepJob::Scheme(cfg));
            labels.push((inc, dec));
        }
    }
    eprintln!("sweeping {} AIMD settings on fig8-isp…", jobs.len());
    let reports = run_sweep(&jobs).expect("sweep runs");
    for ((inc, dec), mut r) in labels.into_iter().zip(reports) {
        r.scheme = format!("spider-protocol[i{inc},d{dec}]");
        let row = FigureRow::new("fig8-aimd-isp", "aimd_increase_xrp", inc, &r);
        println!("{}", spider_core::output::to_csv_row(&row));
        rows.push(row);
    }
}

fn main() {
    let only = std::env::var("SPIDER_FIG8_ONLY").ok();
    let args = HarnessArgs::parse();
    let capacity = 30_000;
    let mut rows: Vec<FigureRow> = Vec::new();

    for (label, base) in [
        ("fig8-isp", isp_experiment(capacity, args.full, args.seed)),
        (
            "fig8-ripple",
            ripple_experiment(capacity, args.full, args.seed),
        ),
    ] {
        if let Some(filter) = &only {
            if !label.ends_with(filter.as_str()) {
                continue;
            }
        }
        eprintln!("running {label} ({} txns, 4 runs)…", base.workload.count);
        let mut queued = base.clone();
        queued.sim.queueing = QueueingMode::PerChannelFifo(QueueConfig::default());

        // 1. the §5 protocol through the scheme registry; 2./3. the
        // AIMD-window baselines in the same queueing mode; 4. plain
        // lockstep shortest-path for reference.
        let mut protocol_cfg = queued.clone();
        protocol_cfg.scheme = SchemeConfig::spider_protocol(4);
        let mut plain = base.clone();
        plain.scheme = SchemeConfig::ShortestPath;
        let names = [
            "spider-protocol",
            "shortest-path+window",
            "spider-waterfilling+window",
            "shortest-path",
        ];
        let jobs = vec![
            SweepJob::Scheme(protocol_cfg),
            SweepJob::Custom {
                cfg: queued.clone(),
                build: Box::new(|| {
                    Box::new(Windowed::new(ShortestPath::new(), WindowConfig::default()))
                }),
            },
            SweepJob::Custom {
                cfg: queued.clone(),
                build: Box::new(|| {
                    Box::new(Windowed::new(
                        SpiderWaterfilling::new(4),
                        WindowConfig::default(),
                    ))
                }),
            },
            SweepJob::Scheme(plain),
        ];
        let reports = run_sweep(&jobs).expect("experiments run");

        for (name, mut r) in names.into_iter().zip(reports) {
            r.scheme = name.to_string();
            let row = FigureRow::new(label, "capacity_xrp", capacity as f64, &r);
            println!("{}", spider_core::output::to_csv_row(&row));
            if r.units_marked > 0 || r.units_queued > 0 {
                eprintln!(
                    "  {}: marking_rate={:.1}% queued_units={} dropped={} avg_queue_delay={:?}s",
                    r.scheme,
                    100.0 * r.marking_rate(),
                    r.units_queued,
                    r.units_dropped,
                    r.avg_queue_delay().map(|d| (d * 1e3).round() / 1e3),
                );
            }
            rows.push(row);
        }

        if label == "fig8-isp" && std::env::var("SPIDER_FIG8_SWEEP").is_ok() {
            let mut sweep_rows = Vec::new();
            aimd_sweep(&queued, &mut sweep_rows);
            emit("fig8_aimd_sweep", &sweep_rows, &args.out_dir);
        }
    }

    emit("fig8_queue_protocol", &rows, &args.out_dir);
}
