//! §5.2.3 — throughput with on-chain rebalancing.
//!
//! Prints the t(B) curve (maximum throughput under a total rebalancing
//! budget B, eqs. 12–18) for the §5.1 example and a random instance, and
//! verifies the paper's analytical claims:
//!
//! * t(0) = ν(C*) (no rebalancing ⇒ Proposition 1 bound);
//! * t(B) is non-decreasing and concave;
//! * t(∞) = total demand (with ample channel capacity);
//! * the γ-form (eqs. 6–11) interpolates: large γ ⇒ balanced optimum,
//!   γ → 0 ⇒ full demand.

use spider_bench::HarnessArgs;
use spider_lp::fluid::{FluidProblem, PathSelection};
use spider_paygraph::decompose::max_circulation_value;
use spider_paygraph::{examples, generate};
use spider_topology::gen;
use spider_types::{Amount, DetRng};

fn check_curve(name: &str, problem: &FluidProblem, nu: f64, total: f64, budgets: &[f64]) {
    println!("\n{name}: t(B) for budgets {budgets:?}");
    println!("{:>10} {:>12}", "B", "t(B)");
    let ts: Vec<f64> = budgets
        .iter()
        .map(|&b| problem.throughput_with_budget(b).expect("LP solves"))
        .collect();
    for (b, t) in budgets.iter().zip(&ts) {
        println!("{b:>10.2} {t:>12.4}");
    }
    assert!(
        (ts[0] - nu).abs() < 1e-6,
        "t(0) = {} but ν(C*) = {nu}",
        ts[0]
    );
    for w in ts.windows(2) {
        assert!(w[1] >= w[0] - 1e-9, "t(B) must be non-decreasing");
    }
    for i in 1..budgets.len() - 1 {
        let lam = (budgets[i] - budgets[i - 1]) / (budgets[i + 1] - budgets[i - 1]);
        let interp = (1.0 - lam) * ts[i - 1] + lam * ts[i + 1];
        assert!(
            ts[i] >= interp - 1e-6,
            "t(B) must be concave at B = {}",
            budgets[i]
        );
    }
    let t_inf = *ts.last().expect("non-empty");
    assert!(
        (t_inf - total).abs() < 1e-6,
        "t(B_max) = {t_inf} should reach total demand {total}"
    );
    println!("t(0) = ν(C*) ✓   non-decreasing ✓   concave ✓   t(∞) = total demand ✓");

    // γ-form interpolation (eqs. 6–11).
    let high_gamma = problem.solve_with_rebalancing(100.0).expect("LP solves");
    let zero_gamma = problem.solve_with_rebalancing(0.0).expect("LP solves");
    assert!((high_gamma.throughput - nu).abs() < 1e-6);
    assert!((zero_gamma.throughput - total).abs() < 1e-6);
    println!(
        "γ = 100 → throughput {:.3} (= ν) ✓   γ = 0 → throughput {:.3} (= demand) ✓",
        high_gamma.throughput, zero_gamma.throughput
    );
}

fn main() {
    let args = HarnessArgs::parse();
    let cap = Amount::from_xrp(1_000_000);

    // The paper's 5-node example.
    let topo = gen::paper_example_topology(cap);
    let demands = examples::paper_example_demands();
    let nu = max_circulation_value(&demands, 1e-6);
    let problem = FluidProblem::new(&topo, &demands, 0.5, PathSelection::KShortest(4));
    check_curve(
        "paper-example",
        &problem,
        nu,
        demands.total_demand(),
        &[0.0, 0.5, 1.0, 2.0, 3.0, 4.0, 6.0, 10.0],
    );

    // A random mixed-demand instance on a small-world graph.
    let mut rng = DetRng::new(args.seed);
    let topo = gen::watts_strogatz(12, 4, 0.2, cap, &mut rng);
    let demands = generate::mixed_demand(12, 20.0, 0.5, &mut rng);
    let nu = max_circulation_value(&demands, 1e-6);
    let problem = FluidProblem::new(&topo, &demands, 0.5, PathSelection::KShortest(4));
    check_curve(
        "random-small-world",
        &problem,
        nu,
        demands.total_demand(),
        &[0.0, 2.0, 4.0, 8.0, 12.0, 16.0, 24.0, 40.0],
    );

    println!("\nall §5.2.3 claims verified ✓");
}
