//! §5.2.3 ablation — on-chain rebalancing in the *simulator*.
//!
//! The fluid analysis says throughput beyond ν(C*) requires on-chain
//! deposits, with diminishing returns (t(B) concave). This binary checks
//! the event-level counterpart: a DAG-heavy workload on the ISP topology,
//! swept over rebalancing aggressiveness (how depleted a channel must be
//! before it tops itself up on-chain).
//!
//! Expected shape: without rebalancing, success volume pins near the
//! demand's circulation share; as rebalancing gets more aggressive,
//! success volume climbs toward 100 % while the on-chain deposit volume
//! (the cost side of the γ trade-off) grows.

use spider_bench::{emit, isp_experiment, HarnessArgs};
use spider_core::output::FigureRow;
use spider_core::SchemeConfig;
use spider_sim::config::RebalancingConfig;
use spider_types::SimDuration;

fn main() {
    let args = HarnessArgs::parse();
    let mut rows: Vec<FigureRow> = Vec::new();

    // DAG-heavy demand: strong sender skew → circulation fraction ~0.1.
    let mut base = isp_experiment(10_000, args.full, args.seed);
    base.workload.sender_skew_scale = 2.0;
    base.scheme = SchemeConfig::SpiderWaterfilling { paths: 4 };

    // Reference: the circulation share of this demand.
    let rng = spider_types::DetRng::new(base.seed);
    let topo = base.topology.build(&rng).expect("topology builds");
    let mut wrng = rng.fork("workload");
    let w = spider_sim::Workload::generate(topo.node_count(), &base.workload, &mut wrng);
    let demands = spider_core::experiment::demand_graph(&w, topo.node_count());
    let nu = spider_paygraph::decompose::max_circulation_value(&demands, 1e-6);
    println!(
        "demand circulation fraction: {:.1}% (balanced-forever ceiling)\n",
        100.0 * nu / demands.total_demand()
    );

    // Sweep: no rebalancing, then increasingly aggressive triggers.
    let mut settings: Vec<(f64, Option<RebalancingConfig>)> = vec![(0.0, None)];
    for trigger in [0.05, 0.15, 0.30, 0.45] {
        settings.push((
            trigger,
            Some(RebalancingConfig {
                check_interval: SimDuration::from_millis(500),
                trigger_fraction: trigger,
                target_fraction: 0.5,
                confirmation_delay: SimDuration::from_secs(5),
            }),
        ));
    }

    println!(
        "{:>10} {:>16} {:>17} {:>16} {:>10}",
        "trigger", "success_ratio%", "success_volume%", "onchain (XRP)", "ops"
    );
    for (trigger, rb) in settings {
        let mut cfg = base.clone();
        cfg.sim.rebalancing = rb;
        let r = cfg.run().expect("runs");
        println!(
            "{trigger:>10.2} {:>16.2} {:>17.2} {:>16.0} {:>10}",
            100.0 * r.success_ratio(),
            100.0 * r.success_volume(),
            r.onchain_deposited.as_xrp(),
            r.rebalance_ops,
        );
        rows.push(FigureRow::new(
            "ablation-rebalancing",
            "trigger_fraction",
            trigger,
            &r,
        ));
    }

    emit("ablation_rebalancing", &rows, &args.out_dir);

    // Claims checked: (1) without rebalancing, volume sits at/below the
    // circulation ceiling (Prop. 1, modulo the finite-capacity buffer);
    // (2) any rebalancing setting beats the no-rebalancing baseline.
    let ceiling_pct = 100.0 * nu / demands.total_demand();
    assert!(
        rows[0].success_volume_pct <= ceiling_pct + 5.0,
        "no-rebalancing volume {:.1}% should pin near the circulation ceiling {:.1}%",
        rows[0].success_volume_pct,
        ceiling_pct
    );
    for row in &rows[1..] {
        assert!(
            row.success_volume_pct > rows[0].success_volume_pct,
            "rebalancing at trigger {} should beat the balanced-only baseline",
            row.value
        );
    }
    println!(
        "\nwithout rebalancing, volume pins at the circulation ceiling ({:.1}%); on-chain deposits lift it ✓",
        ceiling_pct
    );
    println!("(diminishing/negative returns at aggressive triggers: many small deposits are wasted — the γ cost-benefit trade-off of §5.2.3)");
}
