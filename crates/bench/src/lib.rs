//! # spider-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation (§6). Each figure has a dedicated binary:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig4_example` | §5.1 / Fig. 4 — shortest-path (5) vs optimal (8) balanced routing |
//! | `prop1_circulation` | §5.2.2 / Fig. 5 — Proposition 1 bounds |
//! | `fig6_success` | Fig. 6 — success ratio & volume, 6 schemes × {ISP, Ripple} |
//! | `fig7_capacity_sweep` | Fig. 7 — success metrics vs per-channel capacity |
//! | `rebalancing_curve` | §5.2.3 — t(B): throughput vs rebalancing budget |
//! | `primal_dual_convergence` | §5.3 — decentralized algorithm vs LP optimum |
//! | `ablation_packet_switching` | §6.2 — packet switching + SRPT vs atomic delivery |
//! | `fig8_queue_protocol` | §5 protocol under queueing vs transport baselines |
//! | `fig10_queue_dynamics` | Fig. 10 — per-channel queue depths over time |
//! | `engine_throughput` | engine events/sec vs the pre-refactor baseline |
//! | `pathfill_throughput` | batched candidate prefill vs the lazy per-pair fill |
//!
//! Every binary accepts `--full` (paper-scale parameters — slower),
//! `--seed N`, and `--out DIR` (write CSV + JSON-lines there). Defaults are
//! laptop-scale and finish in seconds; the *shape* of results (ordering of
//! schemes, crossovers) is what should match the paper, not absolute
//! numbers — see EXPERIMENTS.md.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use spider_core::output::FigureRow;
use spider_core::{run_sweep, ExperimentConfig, SchemeConfig, SweepJob, TopologyConfig};
use spider_sim::{SimConfig, SimReport, SizeDistribution, WorkloadConfig};
use spider_types::{Amount, SimDuration};
use std::path::PathBuf;

/// Command-line options shared by all harness binaries.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Paper-scale parameters (200k / 75k transactions, full Ripple size).
    pub full: bool,
    /// The paper's own measurement point: full Ripple topology driven for
    /// a 200 s horizon (implies `full`; bins that support it extend the
    /// Ripple workload from 85 s to 200 s). Enabled by `--paper-scale`.
    pub paper_scale: bool,
    /// CI-smoke scale: tiny workloads that finish in seconds while still
    /// exercising every code path and output schema.
    pub smoke: bool,
    /// Master seed.
    pub seed: u64,
    /// Where to write CSV/JSONL outputs (also printed to stdout).
    pub out_dir: Option<PathBuf>,
}

impl HarnessArgs {
    /// Parses `--full`, `--paper-scale`, `--smoke`, `--seed N`,
    /// `--out DIR` from `std::env::args`.
    pub fn parse() -> Self {
        let mut args = HarnessArgs {
            full: false,
            paper_scale: false,
            smoke: false,
            seed: 42,
            out_dir: None,
        };
        let mut iter = std::env::args().skip(1);
        while let Some(a) = iter.next() {
            match a.as_str() {
                "--full" => args.full = true,
                "--paper-scale" => {
                    args.paper_scale = true;
                    args.full = true;
                }
                "--smoke" => args.smoke = true,
                "--seed" => {
                    args.seed = iter
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--seed requires an integer");
                }
                "--out" => {
                    args.out_dir = Some(PathBuf::from(iter.next().expect("--out requires a path")));
                }
                "--help" | "-h" => {
                    eprintln!("options: --full  --smoke  --seed N  --out DIR");
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown option {other}; try --help");
                    std::process::exit(2);
                }
            }
        }
        args
    }
}

/// The six-scheme lineup of Fig. 6 / Fig. 7.
pub fn paper_schemes() -> Vec<SchemeConfig> {
    SchemeConfig::paper_lineup()
}

/// The ISP-topology experiment of §6.1 at the given per-channel capacity.
///
/// Full scale: 200,000 transactions at 1,000 tx/s (200 s horizon).
/// Default scale: 20,000 transactions at the same arrival rate, preserving
/// the load-per-capacity operating point while finishing ~10× faster.
pub fn isp_experiment(capacity_xrp: u64, full: bool, seed: u64) -> ExperimentConfig {
    let (count, rate) = if full {
        (200_000, 1_000.0)
    } else {
        (20_000, 1_000.0)
    };
    let horizon = SimDuration::from_secs_f64(count as f64 / rate + 1.0);
    ExperimentConfig {
        topology: TopologyConfig::Isp { capacity_xrp },
        workload: WorkloadConfig {
            count,
            rate_per_sec: rate,
            size: SizeDistribution::RippleIsp,
            // Calibrated so the demand matrix's circulation fraction is
            // ~0.52 — the paper's Spider (LP) success volume on ISP pins
            // "precisely at the circulation component", 52 %.
            sender_skew_scale: 8.0,
        },
        sim: SimConfig {
            horizon,
            mtu: Amount::from_xrp(10),
            ..SimConfig::default()
        },
        scheme: SchemeConfig::ShortestPath, // overridden per run
        dynamics: None,
        faults: None,
        overload: None,
        seed,
    }
}

/// The Ripple-subgraph experiment of §6.1 at the given capacity.
///
/// Full scale: 3,774 nodes / ~12.5k channels, 75,000 transactions over
/// ~85 s. Default scale: a 400-node Ripple-like graph with the transaction
/// count scaled to keep per-channel load comparable.
pub fn ripple_experiment(capacity_xrp: u64, full: bool, seed: u64) -> ExperimentConfig {
    let (nodes, count, rate) = if full {
        (spider_topology::gen::RIPPLE_NODES, 75_000, 75_000.0 / 85.0)
    } else {
        (400, 8_000, 8_000.0 / 85.0 * 10.0)
    };
    let horizon = SimDuration::from_secs_f64(count as f64 / rate + 1.0);
    ExperimentConfig {
        topology: TopologyConfig::RippleLike {
            nodes,
            capacity_xrp,
        },
        workload: WorkloadConfig {
            count,
            rate_per_sec: rate,
            size: SizeDistribution::RippleFull,
            // Calibrated to a circulation fraction of ~0.22-0.29, matching
            // the paper's Ripple-side Spider (LP) success volume of 22 %.
            sender_skew_scale: nodes as f64 / 8.0,
        },
        sim: SimConfig {
            horizon,
            mtu: Amount::from_xrp(20),
            ..SimConfig::default()
        },
        scheme: SchemeConfig::ShortestPath,
        dynamics: None,
        faults: None,
        overload: None,
        seed,
    }
}

/// The shared scaffolding of the resilience sweeps (`churn_resilience`,
/// `fault_resilience`, `overload_resilience`): a scheme lineup ×
/// {ISP, Ripple} × intensity grid on the identical workload and seed per
/// topology, fanned through [`run_sweep`] and echoed row-by-row as CSV
/// while collecting [`FigureRow`]s.
pub struct ResilienceSweep<'a> {
    /// Per-topology row labels, e.g. `["churn-isp", "churn-ripple"]`.
    pub labels: [&'a str; 2],
    /// The `FigureRow` parameter column, e.g. `"churn_intensity"`.
    pub parameter: &'a str,
    /// Per-channel capacity (XRP) of both topologies.
    pub capacity_xrp: u64,
    /// The intensity grid of the sweep.
    pub intensities: &'a [f64],
    /// The scheme lineup run at every intensity.
    pub schemes: &'a [SchemeConfig],
}

impl ResilienceSweep<'_> {
    /// Runs the sweep and returns all rows.
    ///
    /// `prepare` tweaks each topology's base experiment (paper-scale
    /// workload extensions, extra knobs) before smoke downsizing;
    /// `scale` derives the experiment for one `(base, intensity)` grid
    /// point (the scheme is overridden afterwards); `detail` prints
    /// per-run diagnostics to stderr.
    pub fn run(
        &self,
        args: &HarnessArgs,
        mut prepare: impl FnMut(&str, &mut ExperimentConfig),
        scale: impl Fn(&ExperimentConfig, f64) -> ExperimentConfig,
        mut detail: impl FnMut(&SimReport, f64),
    ) -> Vec<FigureRow> {
        let mut rows = Vec::new();
        for (label, mut base) in [
            (
                self.labels[0],
                isp_experiment(self.capacity_xrp, args.full, args.seed),
            ),
            (
                self.labels[1],
                ripple_experiment(self.capacity_xrp, args.full, args.seed),
            ),
        ] {
            prepare(label, &mut base);
            if args.smoke {
                // CI scale: a few seconds per topology while still
                // driving every scheme through the real machinery.
                base.workload.count = 800;
                base.sim.horizon =
                    SimDuration::from_secs_f64(800.0 / base.workload.rate_per_sec + 1.0);
                if let TopologyConfig::RippleLike { nodes, .. } = &mut base.topology {
                    *nodes = 120;
                }
            }
            // Phase timings ride along in every row (the profile_*_s
            // JSONL columns); the wall clocks never touch simulated time.
            base.sim.obs.profile = true;
            eprintln!(
                "running {label} ({} txns, {} schemes x {} intensities)…",
                base.workload.count,
                self.schemes.len(),
                self.intensities.len()
            );
            let (base, scale) = (&base, &scale);
            let jobs: Vec<SweepJob> = self
                .intensities
                .iter()
                .flat_map(|&i| {
                    self.schemes.iter().map(move |&scheme| {
                        SweepJob::Scheme(ExperimentConfig {
                            scheme,
                            ..scale(base, i)
                        })
                    })
                })
                .collect();
            let reports = run_sweep(&jobs).expect("experiments run");
            for (j, r) in reports.iter().enumerate() {
                let intensity = self.intensities[j / self.schemes.len()];
                let row = FigureRow::new(label, self.parameter, intensity, r);
                println!("{}", spider_core::output::to_csv_row(&row));
                detail(r, intensity);
                rows.push(row);
            }
        }
        rows
    }
}

/// Prints the table and optionally writes `NAME.csv` / `NAME.jsonl`.
pub fn emit(name: &str, rows: &[FigureRow], out_dir: &Option<PathBuf>) {
    println!("{}", spider_core::output::to_table(rows));
    if let Some(dir) = out_dir {
        std::fs::create_dir_all(dir).expect("create output directory");
        std::fs::write(
            dir.join(format!("{name}.csv")),
            spider_core::output::to_csv(rows),
        )
        .expect("write csv");
        std::fs::write(
            dir.join(format!("{name}.jsonl")),
            spider_core::output::to_json_lines(rows),
        )
        .expect("write jsonl");
        eprintln!("wrote {}/{{{name}.csv,{name}.jsonl}}", dir.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_builders_scale() {
        let small = isp_experiment(30_000, false, 1);
        let full = isp_experiment(30_000, true, 1);
        assert!(full.workload.count > small.workload.count);
        assert_eq!(small.workload.rate_per_sec, full.workload.rate_per_sec);
        let rs = ripple_experiment(30_000, false, 1);
        let rf = ripple_experiment(30_000, true, 1);
        assert!(matches!(rf.topology, TopologyConfig::RippleLike { nodes, .. } if nodes == 3774));
        assert!(matches!(rs.topology, TopologyConfig::RippleLike { nodes, .. } if nodes == 400));
    }

    #[test]
    fn lineup_is_paper_lineup() {
        assert_eq!(paper_schemes().len(), 6);
    }
}
