//! Maximum-circulation / DAG decomposition of a payment graph (§5.2.2).
//!
//! Any payment graph `H` splits into a circulation `C` (flows along cycles,
//! routable forever with perfectly balanced channels) and a residual DAG
//! (flows that inexorably drain someone's balance). Proposition 1 says the
//! best balanced throughput is ν(C*), the value of the *maximum*
//! circulation.
//!
//! Finding C* is a min-cost circulation problem: maximize Σ_e f_e subject
//! to 0 ≤ f_e ≤ w_e and flow conservation — i.e. min-cost circulation with
//! every arc cost −1. We solve it exactly in two phases over integer-scaled
//! rates:
//!
//! 1. **Greedy seeding** — repeatedly locate any cycle in the remaining-
//!    capacity graph with a DFS and push its bottleneck. Each push
//!    saturates an arc, so this costs at most `E` DFS passes and already
//!    finds most of the circulation.
//! 2. **Negative-cycle canceling (Klein's algorithm)** — repeatedly find a
//!    negative-cost cycle in the residual graph with Bellman–Ford and push
//!    its bottleneck. With integer capacities and ±1 costs each push
//!    strictly increases ν by ≥ 1 quantum, so termination and optimality
//!    are guaranteed; greedy seeding makes the number of corrective pushes
//!    small in practice.

use crate::graph::PaymentGraph;
use spider_types::NodeId;

/// Result of [`decompose`]: `original = circulation + dag` edge-wise.
#[derive(Debug, Clone, PartialEq)]
pub struct Decomposition {
    /// The maximum circulation C*: a payment graph that is a circulation.
    pub circulation: PaymentGraph,
    /// The residual DAG component (may be empty).
    pub dag: PaymentGraph,
    /// ν(C*): total rate carried by the circulation.
    pub circulation_value: f64,
    /// True when the solver proved optimality (always, unless the iteration
    /// guard was hit on a pathological instance).
    pub optimal: bool,
}

struct Arc {
    from: usize,
    to: usize,
    cap: u64,
    flow: u64,
}

/// A residual arc reference: arc index + orientation.
#[derive(Clone, Copy)]
struct ResArc {
    arc: usize,
    forward: bool,
}

/// Decomposes `pg` into its maximum circulation and DAG residue.
///
/// `precision` is the rate quantum for integer scaling (e.g. `1e-6`): rates
/// are rounded to multiples of it before solving, so inputs whose rates are
/// multiples of `precision` decompose exactly.
pub fn decompose(pg: &PaymentGraph, precision: f64) -> Decomposition {
    assert!(
        precision > 0.0 && precision.is_finite(),
        "invalid precision"
    );
    let n = pg.node_count();
    let mut arcs: Vec<Arc> = Vec::with_capacity(pg.edge_count());
    let mut endpoints: Vec<(NodeId, NodeId)> = Vec::with_capacity(pg.edge_count());
    for e in pg.edges() {
        let cap = (e.rate / precision).round() as u64;
        if cap > 0 {
            arcs.push(Arc {
                from: e.src.index(),
                to: e.dst.index(),
                cap,
                flow: 0,
            });
            endpoints.push((e.src, e.dst));
        }
    }

    greedy_cycles(&mut arcs, n);
    let optimal = cancel_negative_cycles(&mut arcs, n, 100_000);

    let mut circulation = PaymentGraph::new(n);
    let mut dag = PaymentGraph::new(n);
    let mut value = 0.0;
    for (arc, &(src, dst)) in arcs.iter().zip(&endpoints) {
        if arc.flow > 0 {
            let r = arc.flow as f64 * precision;
            circulation.add_demand(src, dst, r);
            value += r;
        }
        if arc.flow < arc.cap {
            dag.add_demand(src, dst, (arc.cap - arc.flow) as f64 * precision);
        }
    }
    Decomposition {
        circulation,
        dag,
        circulation_value: value,
        optimal,
    }
}

/// ν(C*) of `pg` — see [`decompose`].
pub fn max_circulation_value(pg: &PaymentGraph, precision: f64) -> f64 {
    decompose(pg, precision).circulation_value
}

/// True iff the positive-rate edges of `pg` contain no directed cycle
/// (checked with Kahn's algorithm).
pub fn is_dag(pg: &PaymentGraph) -> bool {
    let n = pg.node_count();
    let mut indeg = vec![0usize; n];
    let mut out: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in pg.edges() {
        indeg[e.dst.index()] += 1;
        out[e.src.index()].push(e.dst.index());
    }
    let mut stack: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut seen = 0;
    while let Some(u) = stack.pop() {
        seen += 1;
        for &v in &out[u] {
            indeg[v] -= 1;
            if indeg[v] == 0 {
                stack.push(v);
            }
        }
    }
    seen == n
}

/// Phase 1: push flow around arbitrary cycles of the remaining-capacity
/// graph until none remain. Deterministic (arcs scanned in index order).
fn greedy_cycles(arcs: &mut [Arc], n: usize) {
    loop {
        match find_capacity_cycle(arcs, n) {
            Some(cycle) => {
                let bottleneck = cycle
                    .iter()
                    .map(|&ai| arcs[ai].cap - arcs[ai].flow)
                    .min()
                    .expect("cycle is non-empty");
                debug_assert!(bottleneck > 0);
                for &ai in &cycle {
                    arcs[ai].flow += bottleneck;
                }
            }
            None => return,
        }
    }
}

/// Finds a directed cycle among arcs with residual forward capacity, as a
/// list of arc indices, using an iterative coloring DFS.
fn find_capacity_cycle(arcs: &[Arc], n: usize) -> Option<Vec<usize>> {
    // Adjacency over unsaturated arcs.
    let mut out: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, a) in arcs.iter().enumerate() {
        if a.flow < a.cap {
            out[a.from].push(i);
        }
    }
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color = vec![Color::White; n];
    // DFS stack of (node, next-out-index); `path` holds the arc taken into
    // each stacked node (parallel to stack[1..]).
    for start in 0..n {
        if color[start] != Color::White {
            continue;
        }
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        let mut path_arcs: Vec<usize> = Vec::new();
        color[start] = Color::Gray;
        while let Some(&mut (u, ref mut next)) = stack.last_mut() {
            if *next < out[u].len() {
                let ai = out[u][*next];
                *next += 1;
                let v = arcs[ai].to;
                match color[v] {
                    Color::White => {
                        color[v] = Color::Gray;
                        stack.push((v, 0));
                        path_arcs.push(ai);
                    }
                    Color::Gray => {
                        // Found a cycle: arcs from v back to u, plus ai.
                        let pos = stack
                            .iter()
                            .position(|&(node, _)| node == v)
                            .expect("gray node is on stack");
                        let mut cycle: Vec<usize> = path_arcs[pos..].to_vec();
                        cycle.push(ai);
                        return Some(cycle);
                    }
                    Color::Black => {}
                }
            } else {
                color[u] = Color::Black;
                stack.pop();
                path_arcs.pop();
            }
        }
    }
    None
}

/// Phase 2: Klein's negative-cycle canceling on the residual graph.
/// Returns true if it ran to proven optimality.
fn cancel_negative_cycles(arcs: &mut [Arc], n: usize, max_rounds: usize) -> bool {
    for _ in 0..max_rounds {
        match find_negative_cycle(arcs, n) {
            Some(cycle) => {
                let bottleneck = cycle
                    .iter()
                    .map(|r| {
                        let a = &arcs[r.arc];
                        if r.forward {
                            a.cap - a.flow
                        } else {
                            a.flow
                        }
                    })
                    .min()
                    .expect("cycle is non-empty");
                debug_assert!(bottleneck > 0);
                for r in cycle {
                    if r.forward {
                        arcs[r.arc].flow += bottleneck;
                    } else {
                        arcs[r.arc].flow -= bottleneck;
                    }
                }
            }
            None => return true,
        }
    }
    false
}

/// Bellman–Ford over the residual graph (forward arcs cost −1, backward
/// arcs cost +1) from a virtual all-zero source; returns a negative cycle
/// as residual arc references, or `None`.
fn find_negative_cycle(arcs: &[Arc], n: usize) -> Option<Vec<ResArc>> {
    let mut res: Vec<(usize, usize, i64, ResArc)> = Vec::with_capacity(arcs.len() * 2);
    for (i, a) in arcs.iter().enumerate() {
        if a.flow < a.cap {
            res.push((
                a.from,
                a.to,
                -1,
                ResArc {
                    arc: i,
                    forward: true,
                },
            ));
        }
        if a.flow > 0 {
            res.push((
                a.to,
                a.from,
                1,
                ResArc {
                    arc: i,
                    forward: false,
                },
            ));
        }
    }
    let mut dist = vec![0i64; n];
    let mut pred: Vec<Option<(usize, ResArc)>> = vec![None; n];
    let mut updated_node = None;
    for round in 0..n {
        updated_node = None;
        for &(u, v, cost, r) in &res {
            if dist[u] + cost < dist[v] {
                dist[v] = dist[u] + cost;
                pred[v] = Some((u, r));
                updated_node = Some(v);
            }
        }
        updated_node?;
        // Only the n-th round's updates prove a negative cycle.
        let _ = round;
    }
    // Walk back n steps from the updated node to land inside the cycle.
    let mut x = updated_node.expect("checked above");
    for _ in 0..n {
        x = pred[x].expect("on a path with updates").0;
    }
    // Collect the cycle.
    let mut cycle = Vec::new();
    let mut cur = x;
    loop {
        let (prev, r) = pred[cur].expect("cycle nodes have predecessors");
        cycle.push(r);
        cur = prev;
        if cur == x {
            break;
        }
    }
    cycle.reverse();
    Some(cycle)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    const P: f64 = 1e-6;

    fn graph(n_nodes: usize, edges: &[(u32, u32, f64)]) -> PaymentGraph {
        let mut g = PaymentGraph::new(n_nodes);
        for &(s, d, r) in edges {
            g.add_demand(n(s), n(d), r);
        }
        g
    }

    fn check_invariants(pg: &PaymentGraph, dec: &Decomposition) {
        assert!(dec.optimal);
        // Conservation of demand: circulation + dag == original.
        let mut sum = dec.circulation.clone();
        for e in dec.dag.edges() {
            sum.add_demand(e.src, e.dst, e.rate);
        }
        assert!(
            pg.l1_distance(&sum) < 1e-6,
            "decomposition does not sum back"
        );
        // The circulation really is a circulation.
        assert!(dec.circulation.is_circulation(1e-6));
        // Value consistency.
        assert!((dec.circulation.total_demand() - dec.circulation_value).abs() < 1e-6);
    }

    #[test]
    fn pure_cycle_is_fully_circulation() {
        let g = graph(3, &[(0, 1, 2.0), (1, 2, 2.0), (2, 0, 2.0)]);
        let dec = decompose(&g, P);
        check_invariants(&g, &dec);
        assert!((dec.circulation_value - 6.0).abs() < 1e-9);
        assert_eq!(dec.dag.edge_count(), 0);
    }

    #[test]
    fn pure_dag_has_no_circulation() {
        let g = graph(4, &[(0, 1, 1.0), (0, 2, 2.0), (1, 3, 1.0), (2, 3, 2.0)]);
        let dec = decompose(&g, P);
        check_invariants(&g, &dec);
        assert_eq!(dec.circulation_value, 0.0);
        assert_eq!(dec.circulation.edge_count(), 0);
        assert!(is_dag(&dec.dag));
        assert!((dec.dag.total_demand() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn greedy_alone_would_be_suboptimal() {
        // A→B(1), B→C(1), C→A(1), B→A(1). Greedy may grab the 2-cycle
        // A→B→A (value 2) and strand the 3-cycle; the optimum takes
        // A→B→C→A (value 3). Phase 2 must correct this.
        let g = graph(3, &[(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0), (1, 0, 1.0)]);
        let dec = decompose(&g, P);
        check_invariants(&g, &dec);
        assert!(
            (dec.circulation_value - 3.0).abs() < 1e-9,
            "ν = {}",
            dec.circulation_value
        );
        // The residual DAG is the lone B→A edge.
        assert_eq!(dec.dag.edge_count(), 1);
        assert!((dec.dag.demand(n(1), n(0)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn partial_edge_split_between_components() {
        // 0→1 at 3, 1→0 at 1: a 2-cycle of value 2 plus a DAG remnant of 2.
        let g = graph(2, &[(0, 1, 3.0), (1, 0, 1.0)]);
        let dec = decompose(&g, P);
        check_invariants(&g, &dec);
        assert!((dec.circulation_value - 2.0).abs() < 1e-9);
        assert!((dec.circulation.demand(n(0), n(1)) - 1.0).abs() < 1e-9);
        assert!((dec.dag.demand(n(0), n(1)) - 2.0).abs() < 1e-9);
        assert!(is_dag(&dec.dag));
    }

    #[test]
    fn two_overlapping_cycles_share_an_edge() {
        // Cycles 0→1→2→0 and 0→1→3→0 share edge 0→1 with capacity 2.
        let g = graph(
            4,
            &[
                (0, 1, 2.0),
                (1, 2, 1.0),
                (2, 0, 1.0),
                (1, 3, 1.0),
                (3, 0, 1.0),
            ],
        );
        let dec = decompose(&g, P);
        check_invariants(&g, &dec);
        assert!((dec.circulation_value - 6.0).abs() < 1e-9);
        assert_eq!(dec.dag.edge_count(), 0);
    }

    #[test]
    fn empty_graph() {
        let g = PaymentGraph::new(4);
        let dec = decompose(&g, P);
        assert_eq!(dec.circulation_value, 0.0);
        assert_eq!(dec.circulation.edge_count(), 0);
        assert_eq!(dec.dag.edge_count(), 0);
        assert!(dec.optimal);
    }

    #[test]
    fn fractional_rates_round_to_precision() {
        let g = graph(2, &[(0, 1, 0.5), (1, 0, 0.2500004)]);
        let dec = decompose(&g, 1e-6);
        check_invariants(&g, &dec);
        assert!((dec.circulation_value - 0.5).abs() < 1e-5);
    }

    #[test]
    fn is_dag_detects_cycles() {
        assert!(is_dag(&graph(3, &[(0, 1, 1.0), (1, 2, 1.0)])));
        assert!(!is_dag(&graph(3, &[(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)])));
        assert!(is_dag(&PaymentGraph::new(0)));
    }

    /// Brute-force optimum for tiny instances: try all integer flows.
    fn brute_force_max_circulation(pg: &PaymentGraph) -> f64 {
        let edges: Vec<_> = pg.edges().collect();
        let caps: Vec<u64> = edges.iter().map(|e| e.rate.round() as u64).collect();
        let mut best = 0u64;
        fn rec(
            i: usize,
            flows: &mut Vec<u64>,
            caps: &[u64],
            edges: &[crate::graph::DemandEdge],
            n: usize,
            best: &mut u64,
        ) {
            if i == caps.len() {
                // Check conservation.
                let mut bal = vec![0i64; n];
                for (f, e) in flows.iter().zip(edges) {
                    bal[e.src.index()] += *f as i64;
                    bal[e.dst.index()] -= *f as i64;
                }
                if bal.iter().all(|&b| b == 0) {
                    *best = (*best).max(flows.iter().sum());
                }
                return;
            }
            for f in 0..=caps[i] {
                flows.push(f);
                rec(i + 1, flows, caps, edges, n, best);
                flows.pop();
            }
        }
        rec(
            0,
            &mut Vec::new(),
            &caps,
            &edges,
            pg.node_count(),
            &mut best,
        );
        best as f64
    }

    #[test]
    fn matches_brute_force_on_random_small_instances() {
        use spider_types::DetRng;
        let mut rng = DetRng::new(99);
        for trial in 0..40 {
            let nodes = 4;
            let mut g = PaymentGraph::new(nodes);
            let edge_count = 3 + rng.index(4); // 3..6 edges
            let mut added = 0;
            let mut guard = 0;
            while added < edge_count && guard < 100 {
                guard += 1;
                let s = rng.index(nodes) as u32;
                let d = rng.index(nodes) as u32;
                if s != d && g.demand(n(s), n(d)) == 0.0 {
                    g.add_demand(n(s), n(d), (1 + rng.index(3)) as f64);
                    added += 1;
                }
            }
            let dec = decompose(&g, 1.0);
            check_invariants(&g, &dec);
            let expect = brute_force_max_circulation(&g);
            assert!(
                (dec.circulation_value - expect).abs() < 1e-9,
                "trial {trial}: got {} want {expect} for {:?}",
                dec.circulation_value,
                g.edges().collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn dag_residue_has_no_cycles_on_random_instances() {
        use spider_types::DetRng;
        let mut rng = DetRng::new(7);
        for _ in 0..20 {
            let nodes = 6;
            let mut g = PaymentGraph::new(nodes);
            for _ in 0..10 {
                let s = rng.index(nodes) as u32;
                let d = rng.index(nodes) as u32;
                if s != d {
                    g.add_demand(n(s), n(d), (1 + rng.index(5)) as f64);
                }
            }
            let dec = decompose(&g, 1.0);
            check_invariants(&g, &dec);
            // If the DAG residue had a cycle, the circulation was not
            // maximum (we could push around that cycle).
            assert!(is_dag(&dec.dag));
        }
    }
}
