//! Demand-matrix generators for the fluid-model experiments.
//!
//! Three families, mirroring how the paper reasons about workloads:
//!
//! * [`circulation_demand`] — a pure circulation (every unit of demand is
//!   routable with balanced channels; Prop. 1 says balanced routing can hit
//!   100 %);
//! * [`dag_demand`] — a pure DAG (nothing is routable forever without
//!   on-chain rebalancing);
//! * [`mixed_demand`] — a convex mixture, the knob the NSDI version sweeps
//!   as "x % circulation, (100−x) % DAG";
//! * [`skewed_demand`] — the §6.1 sampling procedure (exponentially skewed
//!   senders, uniform receivers) as a rate matrix.

use crate::graph::PaymentGraph;
use spider_types::distr::ExponentialRank;
use spider_types::{DetRng, NodeId};

/// Generates a pure circulation of roughly `total_rate` by overlaying
/// `cycles` random simple cycles (each of length ≥ 2) with equal rate.
///
/// The result is exactly a circulation: [`PaymentGraph::is_circulation`]
/// holds by construction.
pub fn circulation_demand(
    n: usize,
    cycles: usize,
    total_rate: f64,
    rng: &mut DetRng,
) -> PaymentGraph {
    assert!(n >= 2, "need at least two nodes");
    assert!(cycles >= 1 && total_rate > 0.0);
    let mut g = PaymentGraph::new(n);
    let per_cycle = total_rate / cycles as f64;
    for _ in 0..cycles {
        // Random cycle: a shuffled subset of 2..=min(n,6) distinct nodes.
        let len = 2 + rng.index(n.min(6) - 1);
        let mut nodes: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut nodes);
        nodes.truncate(len);
        let rate = per_cycle / len as f64;
        for i in 0..len {
            let s = NodeId::from_index(nodes[i]);
            let d = NodeId::from_index(nodes[(i + 1) % len]);
            g.add_demand(s, d, rate);
        }
    }
    g
}

/// Generates a pure DAG demand of roughly `total_rate`: demands only flow
/// from lower to higher node rank under a random permutation, so no cycle
/// can exist and ν(C*) = 0.
pub fn dag_demand(n: usize, edges: usize, total_rate: f64, rng: &mut DetRng) -> PaymentGraph {
    assert!(n >= 2 && edges >= 1 && total_rate > 0.0);
    let mut order: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut order);
    let mut g = PaymentGraph::new(n);
    let per_edge = total_rate / edges as f64;
    let mut added = 0;
    let mut guard = 0;
    while added < edges && guard < edges * 64 {
        guard += 1;
        let a = rng.index(n);
        let b = rng.index(n);
        if a == b {
            continue;
        }
        // Orient along the permutation to guarantee acyclicity.
        let (lo, hi) = if order[a] < order[b] { (a, b) } else { (b, a) };
        g.add_demand(NodeId::from_index(lo), NodeId::from_index(hi), per_edge);
        added += 1;
    }
    g
}

/// A mixture: `circ_frac` of `total_rate` as circulation, the rest as DAG.
/// `circ_frac = 1.0` is fully balanced demand; `0.0` is fully unbalanced.
pub fn mixed_demand(n: usize, total_rate: f64, circ_frac: f64, rng: &mut DetRng) -> PaymentGraph {
    assert!((0.0..=1.0).contains(&circ_frac), "fraction out of range");
    let mut g = PaymentGraph::new(n);
    if circ_frac > 0.0 {
        let c = circulation_demand(n, (n / 2).max(1), total_rate * circ_frac, rng);
        for e in c.edges() {
            g.add_demand(e.src, e.dst, e.rate);
        }
    }
    if circ_frac < 1.0 {
        let d = dag_demand(n, (n * 2).max(1), total_rate * (1.0 - circ_frac), rng);
        for e in d.edges() {
            g.add_demand(e.src, e.dst, e.rate);
        }
    }
    g
}

/// The §6.1 workload as a rate matrix: `pairs` sender–receiver pairs with
/// the sender drawn from an exponential rank distribution (`sender_scale`
/// controls skew; smaller = more skewed) and the receiver uniform; each
/// pair's rate is `total_rate / pairs`.
pub fn skewed_demand(
    n: usize,
    pairs: usize,
    total_rate: f64,
    sender_scale: f64,
    rng: &mut DetRng,
) -> PaymentGraph {
    assert!(n >= 2 && pairs >= 1 && total_rate > 0.0);
    let sampler = ExponentialRank::new(n, sender_scale);
    // Fixed random rank→node mapping so "rank 0" isn't always node 0.
    let mut rank_to_node: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut rank_to_node);
    let mut g = PaymentGraph::new(n);
    let per_pair = total_rate / pairs as f64;
    for _ in 0..pairs {
        let s = rank_to_node[sampler.sample_rank(rng)];
        let mut d = rng.index(n);
        let mut guard = 0;
        while d == s && guard < 64 {
            d = rng.index(n);
            guard += 1;
        }
        if d == s {
            continue;
        }
        g.add_demand(NodeId::from_index(s), NodeId::from_index(d), per_pair);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::{decompose, max_circulation_value};

    #[test]
    fn circulation_demand_is_circulation() {
        let mut rng = DetRng::new(1);
        let g = circulation_demand(10, 5, 20.0, &mut rng);
        assert!(g.is_circulation(1e-9));
        assert!((g.total_demand() - 20.0).abs() < 1e-9);
        // Its max circulation is itself.
        let v = max_circulation_value(&g, 1e-9);
        assert!((v - 20.0).abs() < 1e-6, "ν = {v}");
    }

    #[test]
    fn dag_demand_has_zero_circulation() {
        let mut rng = DetRng::new(2);
        let g = dag_demand(10, 20, 50.0, &mut rng);
        assert!(g.total_demand() > 0.0);
        assert_eq!(max_circulation_value(&g, 1e-6), 0.0);
        assert!(crate::decompose::is_dag(&g));
    }

    #[test]
    fn mixed_demand_interpolates() {
        let mut rng = DetRng::new(3);
        let g = mixed_demand(12, 100.0, 0.6, &mut rng);
        assert!((g.total_demand() - 100.0).abs() < 1e-6);
        let dec = decompose(&g, 1e-6);
        // At least the injected circulation is recoverable; random DAG
        // edges may add more cycles, never fewer.
        assert!(
            dec.circulation_value >= 60.0 - 1e-6,
            "ν = {}",
            dec.circulation_value
        );
    }

    #[test]
    fn mixed_demand_extremes() {
        let mut rng = DetRng::new(4);
        let pure_c = mixed_demand(8, 10.0, 1.0, &mut rng);
        assert!(pure_c.is_circulation(1e-9));
        let pure_d = mixed_demand(8, 10.0, 0.0, &mut rng);
        assert_eq!(max_circulation_value(&pure_d, 1e-6), 0.0);
    }

    #[test]
    fn skewed_demand_shape() {
        let mut rng = DetRng::new(5);
        let g = skewed_demand(20, 200, 40.0, 3.0, &mut rng);
        assert!((g.total_demand() - 40.0).abs() < 1e-6);
        // Skew: the busiest sender originates far more than 1/n of demand.
        let mut out = [0.0; 20];
        for e in g.edges() {
            out[e.src.index()] += e.rate;
        }
        let max_out = out.iter().cloned().fold(0.0, f64::max);
        assert!(max_out > 2.0 * (40.0 / 20.0), "max sender rate {max_out}");
    }

    #[test]
    fn generators_are_deterministic() {
        let g1 = skewed_demand(10, 50, 10.0, 2.0, &mut DetRng::new(42));
        let g2 = skewed_demand(10, 50, 10.0, 2.0, &mut DetRng::new(42));
        assert_eq!(g1, g2);
        let c1 = circulation_demand(10, 4, 8.0, &mut DetRng::new(43));
        let c2 = circulation_demand(10, 4, 8.0, &mut DetRng::new(43));
        assert_eq!(c1, c2);
    }
}
