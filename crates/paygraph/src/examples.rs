//! The paper's §5.1 / Fig. 4–5 motivating example, reconstructed so that
//! every quantitative claim in the text holds exactly.
//!
//! The paper states (for the 5-node topology of Fig. 4):
//!
//! * total demand is 12 units/s across 8 sender–receiver pairs
//!   (four pairs at rate 2, four at rate 1);
//! * node 1 sends at rate 1 to nodes 2 and 5; node 2 sends at rate 2 to
//!   node 4; node 4 routes rate 1 to node 1 along `4 → 2 → 1`; nodes 3 and
//!   4 send 1 unit to nodes 2 and 3 respectively;
//! * **shortest-path balanced routing tops out at 5 units/s**;
//! * **optimal balanced routing achieves 8 units/s**, which equals ν(C*)
//!   (the payment graph decomposes into a circulation of value 8 — seven
//!   edges with weights {2,1,1,1,1,1,1}, matching Fig. 5b — and a DAG of
//!   value 4);
//! * hence only 8/12 ≈ 67 % of demand is routable without rebalancing (the
//!   paper prints "8/12 = 75 %"; the quantities 8 and 12 are what we
//!   reproduce — the printed percentage is an arithmetic slip).
//!
//! The exact demand set is not printed in the paper; the instance below is
//! the (unique up to relabeling we found) assignment consistent with all of
//! the above, and the claims are verified by tests here and reproduced by
//! `spider-bench --bin fig4_example`.

use crate::graph::PaymentGraph;
use spider_types::NodeId;

/// Number of nodes in the example (paper nodes 1–5 map to ids 0–4).
pub const NODES: usize = 5;

/// Total demand of the example payment graph.
pub const TOTAL_DEMAND: f64 = 12.0;

/// Maximum circulation value ν(C*) of the example.
pub const MAX_CIRCULATION: f64 = 8.0;

/// Throughput of shortest-path balanced routing on the example topology.
pub const SHORTEST_PATH_THROUGHPUT: f64 = 5.0;

/// The example's demand matrix. Paper node *k* is `NodeId(k-1)`.
///
/// Demands: (1→2):1, (1→5):1, (3→2):1, (4→3):1, (2→4):2, (4→1):2,
/// (5→3):2, (5→1):2.
pub fn paper_example_demands() -> PaymentGraph {
    let mut g = PaymentGraph::new(NODES);
    let demands: [(u32, u32, f64); 8] = [
        (1, 2, 1.0),
        (1, 5, 1.0),
        (3, 2, 1.0),
        (4, 3, 1.0),
        (2, 4, 2.0),
        (4, 1, 2.0),
        (5, 3, 2.0),
        (5, 1, 2.0),
    ];
    for (s, d, r) in demands {
        g.add_demand(NodeId(s - 1), NodeId(d - 1), r);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::{decompose, is_dag};

    #[test]
    fn totals_match_paper() {
        let g = paper_example_demands();
        assert_eq!(g.edge_count(), 8);
        assert!((g.total_demand() - TOTAL_DEMAND).abs() < 1e-12);
        // Four rate-2 and four rate-1 demands, as in Fig. 4a.
        let mut rates: Vec<f64> = g.edges().map(|e| e.rate).collect();
        rates.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(rates, vec![1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn circulation_value_is_8() {
        let g = paper_example_demands();
        let dec = decompose(&g, 1e-6);
        assert!(dec.optimal);
        assert!(
            (dec.circulation_value - MAX_CIRCULATION).abs() < 1e-9,
            "ν = {}",
            dec.circulation_value
        );
        assert!((dec.dag.total_demand() - (TOTAL_DEMAND - MAX_CIRCULATION)).abs() < 1e-9);
        assert!(is_dag(&dec.dag));
    }

    #[test]
    fn circulation_matches_fig_5b_weight_profile() {
        // Fig. 5b shows seven circulation edges with weights 2,1,1,1,1,1,1.
        let dec = decompose(&paper_example_demands(), 1e-6);
        let mut weights: Vec<f64> = dec.circulation.edges().map(|e| e.rate).collect();
        weights.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(weights, vec![1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 2.0]);
    }

    #[test]
    fn routable_fraction_is_two_thirds() {
        // The paper says "8/12 = 75%" — the ratio of the stated quantities
        // is actually 2/3; we preserve the *quantities* (8 and 12) and note
        // the paper's arithmetic slip in EXPERIMENTS.md.
        let dec = decompose(&paper_example_demands(), 1e-6);
        let frac = dec.circulation_value / TOTAL_DEMAND;
        assert!((frac - 2.0 / 3.0).abs() < 1e-9, "fraction {frac}");
    }
}
