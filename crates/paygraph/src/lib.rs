//! # spider-paygraph
//!
//! The *payment graph* abstraction of §5.2.2: a weighted directed graph
//! whose edge `(i, j)` carries the average rate `d_{i,j}` at which node `i`
//! wants to pay node `j`. The payment graph depends only on the pattern of
//! payments, not on the channel topology.
//!
//! The central result (Proposition 1) is that the maximum throughput any
//! *perfectly balanced* routing can achieve equals ν(C*), the value of the
//! maximum circulation contained in the payment graph. This crate computes
//! that decomposition exactly ([`decompose()`](decompose::decompose)), provides demand-matrix
//! generators for the evaluation workloads, and ships the verified §5.1
//! example instance ([`examples::paper_example_demands`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod decompose;
pub mod examples;
pub mod generate;
pub mod graph;

pub use decompose::{decompose, Decomposition};
pub use graph::{DemandEdge, PaymentGraph};
