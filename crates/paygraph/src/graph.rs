//! The payment (demand) graph data structure.

use serde::{Deserialize, Serialize};
use spider_types::NodeId;
use std::collections::BTreeMap;

/// One demand: node `src` wants to pay node `dst` at `rate` (currency units
/// per second, in whatever unit the caller uses consistently — the paper's
/// fluid model is unit-agnostic).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DemandEdge {
    /// Paying node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Average payment rate (> 0).
    pub rate: f64,
}

/// A weighted directed graph of payment demands (`H(V, E_H)` in §5.2.2).
///
/// Edges are stored in a sorted map so iteration order — and therefore every
/// algorithm built on top — is deterministic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PaymentGraph {
    node_count: usize,
    demands: BTreeMap<(NodeId, NodeId), f64>,
}

impl PaymentGraph {
    /// An empty payment graph over `node_count` nodes.
    pub fn new(node_count: usize) -> Self {
        PaymentGraph {
            node_count,
            demands: BTreeMap::new(),
        }
    }

    /// Number of nodes in the underlying network.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of demand edges (pairs with positive rate).
    pub fn edge_count(&self) -> usize {
        self.demands.len()
    }

    /// Adds `rate` to the demand `src → dst`. Rates accumulate, matching how
    /// a demand matrix is estimated from a transaction stream. Zero or
    /// negative increments and self-demands are rejected.
    pub fn add_demand(&mut self, src: NodeId, dst: NodeId, rate: f64) {
        assert!(src != dst, "self-demand {src}→{src}");
        assert!(
            rate > 0.0 && rate.is_finite(),
            "rate must be positive, got {rate}"
        );
        assert!(
            src.index() < self.node_count && dst.index() < self.node_count,
            "node out of range"
        );
        *self.demands.entry((src, dst)).or_insert(0.0) += rate;
    }

    /// The demand rate `src → dst` (0 when absent).
    pub fn demand(&self, src: NodeId, dst: NodeId) -> f64 {
        self.demands.get(&(src, dst)).copied().unwrap_or(0.0)
    }

    /// Iterator over all demand edges in deterministic order.
    pub fn edges(&self) -> impl Iterator<Item = DemandEdge> + '_ {
        self.demands
            .iter()
            .map(|(&(src, dst), &rate)| DemandEdge { src, dst, rate })
    }

    /// Total demand Σ d_{i,j} — the paper's denominator for "success volume"
    /// in the fluid sense.
    pub fn total_demand(&self) -> f64 {
        self.demands.values().sum()
    }

    /// Net imbalance of `node`: outgoing minus incoming demand. A payment
    /// graph is a circulation iff every node's imbalance is ~0.
    pub fn node_imbalance(&self, node: NodeId) -> f64 {
        let mut out = 0.0;
        let mut inc = 0.0;
        for (&(s, d), &r) in &self.demands {
            if s == node {
                out += r;
            }
            if d == node {
                inc += r;
            }
        }
        out - inc
    }

    /// True iff every node's in-rate equals its out-rate within `tol`.
    pub fn is_circulation(&self, tol: f64) -> bool {
        (0..self.node_count).all(|i| self.node_imbalance(NodeId::from_index(i)).abs() <= tol)
    }

    /// Scales every demand by `factor > 0`.
    pub fn scaled(&self, factor: f64) -> PaymentGraph {
        assert!(factor > 0.0 && factor.is_finite(), "invalid scale factor");
        let mut g = PaymentGraph::new(self.node_count);
        for (&k, &r) in &self.demands {
            g.demands.insert(k, r * factor);
        }
        g
    }

    /// Sum of |demand(i,j) - other.demand(i,j)| over all pairs — a cheap
    /// distance for convergence tests.
    pub fn l1_distance(&self, other: &PaymentGraph) -> f64 {
        let mut keys: Vec<(NodeId, NodeId)> = self.demands.keys().copied().collect();
        keys.extend(other.demands.keys().copied());
        keys.sort_unstable();
        keys.dedup();
        keys.into_iter()
            .map(|(s, d)| (self.demand(s, d) - other.demand(s, d)).abs())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn add_and_query() {
        let mut g = PaymentGraph::new(3);
        g.add_demand(n(0), n(1), 2.0);
        g.add_demand(n(0), n(1), 1.5);
        g.add_demand(n(1), n(2), 4.0);
        assert_eq!(g.demand(n(0), n(1)), 3.5);
        assert_eq!(g.demand(n(1), n(0)), 0.0);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.total_demand(), 7.5);
    }

    #[test]
    #[should_panic(expected = "self-demand")]
    fn rejects_self_demand() {
        PaymentGraph::new(2).add_demand(n(1), n(1), 1.0);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn rejects_nonpositive_rate() {
        PaymentGraph::new(2).add_demand(n(0), n(1), 0.0);
    }

    #[test]
    #[should_panic(expected = "node out of range")]
    fn rejects_out_of_range() {
        PaymentGraph::new(2).add_demand(n(0), n(5), 1.0);
    }

    #[test]
    fn imbalance_and_circulation() {
        let mut g = PaymentGraph::new(3);
        g.add_demand(n(0), n(1), 1.0);
        g.add_demand(n(1), n(2), 1.0);
        assert_eq!(g.node_imbalance(n(0)), 1.0);
        assert_eq!(g.node_imbalance(n(1)), 0.0);
        assert_eq!(g.node_imbalance(n(2)), -1.0);
        assert!(!g.is_circulation(1e-9));
        g.add_demand(n(2), n(0), 1.0);
        assert!(g.is_circulation(1e-9));
    }

    #[test]
    fn edges_iterate_deterministically() {
        let mut g = PaymentGraph::new(3);
        g.add_demand(n(2), n(0), 1.0);
        g.add_demand(n(0), n(1), 1.0);
        g.add_demand(n(1), n(2), 1.0);
        let order: Vec<(NodeId, NodeId)> = g.edges().map(|e| (e.src, e.dst)).collect();
        assert_eq!(order, vec![(n(0), n(1)), (n(1), n(2)), (n(2), n(0))]);
    }

    #[test]
    fn scaling() {
        let mut g = PaymentGraph::new(2);
        g.add_demand(n(0), n(1), 2.0);
        let s = g.scaled(2.5);
        assert_eq!(s.demand(n(0), n(1)), 5.0);
        assert_eq!(s.total_demand(), 5.0);
    }

    #[test]
    fn l1_distance_symmetric() {
        let mut a = PaymentGraph::new(3);
        a.add_demand(n(0), n(1), 2.0);
        let mut b = PaymentGraph::new(3);
        b.add_demand(n(0), n(1), 0.5);
        b.add_demand(n(1), n(2), 1.0);
        assert_eq!(a.l1_distance(&b), 1.5 + 1.0);
        assert_eq!(b.l1_distance(&a), 2.5);
        assert_eq!(a.l1_distance(&a), 0.0);
    }
}
