//! Machine-readable experiment output: JSON records and CSV tables.
//!
//! The bench harness prints the same rows the paper's figures plot; these
//! helpers keep the formats consistent across binaries.

use serde::Serialize;
use spider_sim::SimReport;

/// One figure data point: a scheme evaluated at a parameter setting.
#[derive(Debug, Clone, Serialize)]
pub struct FigureRow {
    /// Figure/experiment identifier (e.g. "fig6-isp").
    pub experiment: String,
    /// Routing scheme.
    pub scheme: String,
    /// Sweep parameter name (e.g. "capacity_xrp"); empty if none.
    pub parameter: String,
    /// Sweep parameter value; 0 if none.
    pub value: f64,
    /// Success ratio in percent (paper's left panels).
    pub success_ratio_pct: f64,
    /// Success volume in percent (paper's right panels).
    pub success_volume_pct: f64,
    /// Completed / attempted payments.
    pub completed: u64,
    /// Attempted payments.
    pub attempted: u64,
    /// Units lost to injected faults (message loss, hop timeout, crash).
    pub units_dropped_fault: u64,
    /// Routing retry attempts beyond each payment's first.
    pub retries: u64,
    /// Mean completion time (s), when any payment completed.
    pub avg_completion_s: Option<f64>,
    /// Median completion latency (s), from the report's latency histogram.
    pub latency_p50_s: Option<f64>,
    /// 99th-percentile completion latency (s).
    pub latency_p99_s: Option<f64>,
}

impl FigureRow {
    /// Builds a row from a report.
    pub fn new(experiment: &str, parameter: &str, value: f64, r: &SimReport) -> Self {
        FigureRow {
            experiment: experiment.to_string(),
            scheme: r.scheme.clone(),
            parameter: parameter.to_string(),
            value,
            success_ratio_pct: 100.0 * r.success_ratio(),
            success_volume_pct: 100.0 * r.success_volume(),
            completed: r.completed_payments,
            attempted: r.attempted_payments,
            units_dropped_fault: r.units_dropped_fault,
            retries: r.retries,
            avg_completion_s: r.avg_completion_time(),
            latency_p50_s: r.latency_hist.percentile(0.50),
            latency_p99_s: r.latency_hist.percentile(0.99),
        }
    }
}

/// CSV header matching [`to_csv_row`].
pub const CSV_HEADER: &str =
    "experiment,scheme,parameter,value,success_ratio_pct,success_volume_pct,completed,attempted,units_dropped_fault,retries,avg_completion_s,latency_p50_s,latency_p99_s";

/// One CSV line (no trailing newline).
pub fn to_csv_row(row: &FigureRow) -> String {
    let opt = |v: Option<f64>| v.map(|v| format!("{v:.4}")).unwrap_or_default();
    format!(
        "{},{},{},{},{:.4},{:.4},{},{},{},{},{},{},{}",
        row.experiment,
        row.scheme,
        row.parameter,
        row.value,
        row.success_ratio_pct,
        row.success_volume_pct,
        row.completed,
        row.attempted,
        row.units_dropped_fault,
        row.retries,
        opt(row.avg_completion_s),
        opt(row.latency_p50_s),
        opt(row.latency_p99_s),
    )
}

/// Whole CSV document.
pub fn to_csv(rows: &[FigureRow]) -> String {
    let mut out = String::from(CSV_HEADER);
    out.push('\n');
    for r in rows {
        out.push_str(&to_csv_row(r));
        out.push('\n');
    }
    out
}

/// JSON-lines document (one record per row).
pub fn to_json_lines(rows: &[FigureRow]) -> String {
    rows.iter()
        .map(|r| serde_json::to_string(r).expect("row serializes"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Renders an aligned text table for terminal output.
pub fn to_table(rows: &[FigureRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<14} {:<22} {:>12} {:>16} {:>17} {:>12}\n",
        "experiment", "scheme", "value", "success_ratio%", "success_volume%", "completed"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<14} {:<22} {:>12.1} {:>16.2} {:>17.2} {:>9}/{}\n",
            r.experiment,
            r.scheme,
            r.value,
            r.success_ratio_pct,
            r.success_volume_pct,
            r.completed,
            r.attempted
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spider_sim::{DropBreakdown, Histogram, ProfileStats, SampleSet, SimReport};
    use spider_types::{Amount, SimDuration};

    fn report() -> SimReport {
        let mut latency_hist = Histogram::new();
        latency_hist.record(0.5);
        latency_hist.record(0.7);
        SimReport {
            scheme: "test".into(),
            attempted_payments: 10,
            completed_payments: 7,
            attempted_volume: Amount::from_xrp(100),
            delivered_volume: Amount::from_xrp(80),
            units_locked: 12,
            units_failed: 3,
            retries: 2,
            unit_hops_sum: 24,
            onchain_deposited: Amount::ZERO,
            rebalance_ops: 0,
            units_acked: 0,
            units_marked: 0,
            units_dropped: 0,
            units_queued: 0,
            topology_events: 0,
            churn_channels_closed: 0,
            churn_channels_opened: 0,
            churn_channels_resized: 0,
            units_dropped_churn: 0,
            payments_failed_churn: 0,
            fault_events: 0,
            faults_injected: 0,
            units_dropped_fault: 0,
            topology_event_times_s: vec![],
            queue_delay_sum_s: 0.0,
            completion_times: vec![0.5, 0.7],
            throughput_series: vec![],
            drops_by_reason: DropBreakdown::default(),
            latency_hist,
            queue_delay_hist: Histogram::new(),
            path_length_hist: Histogram::new(),
            window_hist: Histogram::new(),
            router_counters: vec![],
            samples: SampleSet::default(),
            profile: ProfileStats::default(),
            horizon: SimDuration::from_secs(10),
        }
    }

    #[test]
    fn csv_round_numbers() {
        let row = FigureRow::new("fig6-isp", "capacity_xrp", 30_000.0, &report());
        let line = to_csv_row(&row);
        assert!(line.starts_with("fig6-isp,test,capacity_xrp,30000,70.0000,80.0000,7,10,0,2,"));
        let doc = to_csv(&[row]);
        assert!(doc.starts_with(CSV_HEADER));
        assert_eq!(doc.lines().count(), 2);
    }

    #[test]
    fn json_lines_parse_back() {
        let row = FigureRow::new("figX", "", 0.0, &report());
        let doc = to_json_lines(std::slice::from_ref(&row));
        let v: serde_json::Value = serde_json::from_str(&doc).unwrap();
        assert_eq!(v["scheme"], "test");
        assert_eq!(v["completed"], 7);
    }

    #[test]
    fn table_is_aligned() {
        let rows = vec![FigureRow::new("fig7", "capacity_xrp", 10_000.0, &report())];
        let table = to_table(&rows);
        assert!(table.contains("fig7"));
        assert!(table.lines().count() == 2);
    }

    #[test]
    fn missing_completion_time_is_empty_cell() {
        let mut r = report();
        r.completion_times.clear();
        r.latency_hist = Histogram::new();
        let row = FigureRow::new("e", "", 0.0, &r);
        assert!(to_csv_row(&row).ends_with(",,,"));
    }

    #[test]
    fn latency_percentiles_come_from_the_histogram() {
        let row = FigureRow::new("e", "", 0.0, &report());
        let p50 = row.latency_p50_s.expect("two samples recorded");
        let p99 = row.latency_p99_s.expect("two samples recorded");
        assert!(p50 <= p99);
        // Bucket upper edges are clamped to the observed [min, max].
        assert!((0.5..=0.7).contains(&p50), "{p50}");
        assert!((0.5..=0.7).contains(&p99), "{p99}");
    }
}
