//! Machine-readable experiment output: JSON records and CSV tables.
//!
//! The bench harness prints the same rows the paper's figures plot; these
//! helpers keep the formats consistent across binaries.

use serde::Serialize;
use spider_sim::SimReport;

/// One figure data point: a scheme evaluated at a parameter setting.
#[derive(Debug, Clone, Serialize)]
pub struct FigureRow {
    /// Figure/experiment identifier (e.g. "fig6-isp").
    pub experiment: String,
    /// Routing scheme.
    pub scheme: String,
    /// Sweep parameter name (e.g. "capacity_xrp"); empty if none.
    pub parameter: String,
    /// Sweep parameter value; 0 if none.
    pub value: f64,
    /// Success ratio in percent (paper's left panels).
    pub success_ratio_pct: f64,
    /// Success volume in percent (paper's right panels).
    pub success_volume_pct: f64,
    /// Goodput: completed-payment volume per simulated second (XRP/s).
    /// Partial deliveries of never-completed payments are excluded.
    pub goodput_xrp_s: f64,
    /// Completed / attempted payments.
    pub completed: u64,
    /// Attempted payments.
    pub attempted: u64,
    /// Units lost to injected faults (message loss, hop timeout, crash).
    pub units_dropped_fault: u64,
    /// Units evicted by deadline-aware load shedding (`DropReason::Shed`).
    pub units_dropped_shed: u64,
    /// Units fail-fasted by sender-side admission control
    /// (`DropReason::AdmissionRejected`).
    pub units_dropped_admission: u64,
    /// Arrivals the shaping admission gate paced to a later slot
    /// (deferral is not a drop — the payment still runs).
    pub admission_deferred: u64,
    /// Routing retry attempts beyond each payment's first.
    pub retries: u64,
    /// Mean completion time (s), when any payment completed.
    pub avg_completion_s: Option<f64>,
    /// Median completion latency (s), from the report's latency histogram.
    pub latency_p50_s: Option<f64>,
    /// 99th-percentile completion latency (s).
    pub latency_p99_s: Option<f64>,
    /// Top-ranked hotspot channel id, when attribution ran and found one.
    pub hotspot_channel: Option<u64>,
    /// Attribution score of that channel.
    pub hotspot_score: Option<f64>,
    /// Calendar-pop phase wall time (s), when profiling was enabled.
    pub profile_calendar_pop_s: Option<f64>,
    /// Routing phase wall time (s).
    pub profile_routing_s: Option<f64>,
    /// Forwarding phase wall time (s).
    pub profile_forwarding_s: Option<f64>,
    /// Settlement phase wall time (s).
    pub profile_settlement_s: Option<f64>,
    /// Churn-repair phase wall time (s).
    pub profile_churn_repair_s: Option<f64>,
    /// Series-sampling phase wall time (s).
    pub profile_sampling_s: Option<f64>,
}

impl FigureRow {
    /// Builds a row from a report.
    pub fn new(experiment: &str, parameter: &str, value: f64, r: &SimReport) -> Self {
        let phase_s =
            |s: spider_sim::PhaseStats| r.profile.enabled.then(|| s.total_ns as f64 / 1e9);
        FigureRow {
            experiment: experiment.to_string(),
            scheme: r.scheme.clone(),
            parameter: parameter.to_string(),
            value,
            success_ratio_pct: 100.0 * r.success_ratio(),
            success_volume_pct: 100.0 * r.success_volume(),
            goodput_xrp_s: r.goodput_xrp_per_sec(),
            completed: r.completed_payments,
            attempted: r.attempted_payments,
            units_dropped_fault: r.units_dropped_fault,
            units_dropped_shed: r.drops_by_reason.shed,
            units_dropped_admission: r.drops_by_reason.admission_rejected,
            admission_deferred: r.admission_deferred,
            retries: r.retries,
            avg_completion_s: r.avg_completion_time(),
            latency_p50_s: r.latency_hist.percentile(50.0),
            latency_p99_s: r.latency_hist.percentile(99.0),
            hotspot_channel: r.hotspots.first().map(|h| u64::from(h.channel)),
            hotspot_score: r.hotspots.first().map(|h| h.score),
            profile_calendar_pop_s: phase_s(r.profile.calendar_pop),
            profile_routing_s: phase_s(r.profile.routing),
            profile_forwarding_s: phase_s(r.profile.forwarding),
            profile_settlement_s: phase_s(r.profile.settlement),
            profile_churn_repair_s: phase_s(r.profile.churn_repair),
            profile_sampling_s: phase_s(r.profile.sampling),
        }
    }
}

/// CSV header matching [`to_csv_row`].
pub const CSV_HEADER: &str =
    "experiment,scheme,parameter,value,success_ratio_pct,success_volume_pct,goodput_xrp_s,completed,attempted,units_dropped_fault,units_dropped_shed,units_dropped_admission,admission_deferred,retries,avg_completion_s,latency_p50_s,latency_p99_s,hotspot_channel,hotspot_score,profile_calendar_pop_s,profile_routing_s,profile_forwarding_s,profile_settlement_s,profile_churn_repair_s,profile_sampling_s";

/// One CSV line (no trailing newline).
pub fn to_csv_row(row: &FigureRow) -> String {
    let opt = |v: Option<f64>| v.map(|v| format!("{v:.4}")).unwrap_or_default();
    // Phase wall times are often well under a millisecond per phase, so
    // they keep microsecond resolution.
    let opt6 = |v: Option<f64>| v.map(|v| format!("{v:.6}")).unwrap_or_default();
    format!(
        "{},{},{},{},{:.4},{:.4},{:.2},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
        row.experiment,
        row.scheme,
        row.parameter,
        row.value,
        row.success_ratio_pct,
        row.success_volume_pct,
        row.goodput_xrp_s,
        row.completed,
        row.attempted,
        row.units_dropped_fault,
        row.units_dropped_shed,
        row.units_dropped_admission,
        row.admission_deferred,
        row.retries,
        opt(row.avg_completion_s),
        opt(row.latency_p50_s),
        opt(row.latency_p99_s),
        row.hotspot_channel
            .map(|c| c.to_string())
            .unwrap_or_default(),
        opt(row.hotspot_score),
        opt6(row.profile_calendar_pop_s),
        opt6(row.profile_routing_s),
        opt6(row.profile_forwarding_s),
        opt6(row.profile_settlement_s),
        opt6(row.profile_churn_repair_s),
        opt6(row.profile_sampling_s),
    )
}

/// Whole CSV document.
pub fn to_csv(rows: &[FigureRow]) -> String {
    let mut out = String::from(CSV_HEADER);
    out.push('\n');
    for r in rows {
        out.push_str(&to_csv_row(r));
        out.push('\n');
    }
    out
}

/// JSON-lines document (one record per row).
pub fn to_json_lines(rows: &[FigureRow]) -> String {
    rows.iter()
        .map(|r| serde_json::to_string(r).expect("row serializes"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Renders an aligned text table for terminal output.
pub fn to_table(rows: &[FigureRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<14} {:<22} {:>12} {:>16} {:>17} {:>12}\n",
        "experiment", "scheme", "value", "success_ratio%", "success_volume%", "completed"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<14} {:<22} {:>12.1} {:>16.2} {:>17.2} {:>9}/{}\n",
            r.experiment,
            r.scheme,
            r.value,
            r.success_ratio_pct,
            r.success_volume_pct,
            r.completed,
            r.attempted
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spider_sim::{DropBreakdown, Histogram, ProfileStats, SampleSet, SimReport};
    use spider_types::{Amount, SimDuration};

    fn report() -> SimReport {
        let mut latency_hist = Histogram::new();
        latency_hist.record(0.5);
        latency_hist.record(0.7);
        SimReport {
            scheme: "test".into(),
            attempted_payments: 10,
            completed_payments: 7,
            attempted_volume: Amount::from_xrp(100),
            delivered_volume: Amount::from_xrp(80),
            completed_volume: Amount::from_xrp(70),
            admission_deferred: 0,
            units_locked: 12,
            units_failed: 3,
            retries: 2,
            unit_hops_sum: 24,
            onchain_deposited: Amount::ZERO,
            rebalance_ops: 0,
            units_acked: 0,
            units_marked: 0,
            units_dropped: 0,
            units_queued: 0,
            topology_events: 0,
            churn_channels_closed: 0,
            churn_channels_opened: 0,
            churn_channels_resized: 0,
            units_dropped_churn: 0,
            payments_failed_churn: 0,
            fault_events: 0,
            faults_injected: 0,
            units_dropped_fault: 0,
            topology_event_times_s: vec![],
            queue_delay_sum_s: 0.0,
            completion_times: vec![0.5, 0.7],
            throughput_series: vec![],
            drops_by_reason: DropBreakdown::default(),
            latency_hist,
            queue_delay_hist: Histogram::new(),
            path_length_hist: Histogram::new(),
            window_hist: Histogram::new(),
            router_counters: vec![],
            samples: SampleSet::default(),
            profile: ProfileStats::default(),
            hotspots: vec![],
            horizon: SimDuration::from_secs(10),
        }
    }

    #[test]
    fn csv_round_numbers() {
        let row = FigureRow::new("fig6-isp", "capacity_xrp", 30_000.0, &report());
        let line = to_csv_row(&row);
        assert!(line
            .starts_with("fig6-isp,test,capacity_xrp,30000,70.0000,80.0000,7.00,7,10,0,0,0,0,2,"));
        let doc = to_csv(&[row]);
        assert!(doc.starts_with(CSV_HEADER));
        assert_eq!(doc.lines().count(), 2);
    }

    #[test]
    fn json_lines_parse_back() {
        let row = FigureRow::new("figX", "", 0.0, &report());
        let doc = to_json_lines(std::slice::from_ref(&row));
        let v: serde_json::Value = serde_json::from_str(&doc).unwrap();
        assert_eq!(v["scheme"], "test");
        assert_eq!(v["completed"], 7);
    }

    #[test]
    fn table_is_aligned() {
        let rows = vec![FigureRow::new("fig7", "capacity_xrp", 10_000.0, &report())];
        let table = to_table(&rows);
        assert!(table.contains("fig7"));
        assert!(table.lines().count() == 2);
    }

    #[test]
    fn missing_completion_time_is_empty_cell() {
        let mut r = report();
        r.completion_times.clear();
        r.latency_hist = Histogram::new();
        let row = FigureRow::new("e", "", 0.0, &r);
        // avg/p50/p99 + hotspot pair + six profile phases all empty.
        assert!(to_csv_row(&row).ends_with(&",".repeat(11)));
    }

    #[test]
    fn header_and_row_have_matching_cell_counts() {
        let row = FigureRow::new("e", "", 0.0, &report());
        assert_eq!(
            CSV_HEADER.split(',').count(),
            to_csv_row(&row).split(',').count()
        );
    }

    #[test]
    fn hotspot_and_profile_columns_populate() {
        let mut r = report();
        r.hotspots = vec![spider_sim::ChannelHotspot {
            channel: 3,
            util_frac: 0.9,
            zero_liquidity_s: 1.0,
            imbalance_frac: 0.5,
            queue_residency_s: 0.0,
            drops: 4,
            bottlenecks: 2,
            score: 1.75,
        }];
        r.profile.enabled = true;
        r.profile.routing.count = 10;
        r.profile.routing.total_ns = 2_500_000;
        let row = FigureRow::new("e", "", 0.0, &r);
        assert_eq!(row.hotspot_channel, Some(3));
        assert_eq!(row.hotspot_score, Some(1.75));
        assert_eq!(row.profile_routing_s, Some(0.0025));
        assert_eq!(row.profile_settlement_s, Some(0.0));
        let line = to_csv_row(&row);
        assert!(line.contains(",3,1.7500,"), "{line}");
        assert!(line.contains(",0.002500,"), "{line}");
    }

    #[test]
    fn shed_and_admission_columns_come_from_the_drop_breakdown() {
        let mut r = report();
        r.drops_by_reason.shed = 5;
        r.drops_by_reason.admission_rejected = 9;
        let row = FigureRow::new("e", "", 0.0, &r);
        assert_eq!(row.units_dropped_shed, 5);
        assert_eq!(row.units_dropped_admission, 9);
        // fault, shed, admission, deferred, retries — adjacent cells.
        assert!(to_csv_row(&row).contains(",0,5,9,0,2,"));
    }

    #[test]
    fn latency_percentiles_come_from_the_histogram() {
        let row = FigureRow::new("e", "", 0.0, &report());
        let p50 = row.latency_p50_s.expect("two samples recorded");
        let p99 = row.latency_p99_s.expect("two samples recorded");
        assert!(p50 <= p99);
        // Bucket upper edges are clamped to the observed [min, max].
        assert!((0.5..=0.7).contains(&p50), "{p50}");
        assert!((0.5..=0.7).contains(&p99), "{p99}");
    }
}
