//! Declarative routing-scheme configuration.

use serde::{Deserialize, Serialize};
use spider_paygraph::PaymentGraph;
use spider_protocol::{ProtocolConfig, ProtocolRouter, RateConfig};
use spider_routing::{
    LpSolverKind, MaxFlow, ShortestPath, SilentWhispers, SpeedyMurmurs, SpiderLp,
    SpiderWaterfilling,
};
use spider_sim::Router;
use spider_topology::Topology;
use spider_types::Amount;

/// Which offline solver Spider (LP) uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LpSolver {
    /// Exact dense simplex.
    Simplex,
    /// Decentralized primal-dual iteration.
    PrimalDual,
    /// Size-based automatic choice.
    Auto,
}

impl From<LpSolver> for LpSolverKind {
    fn from(s: LpSolver) -> LpSolverKind {
        match s {
            LpSolver::Simplex => LpSolverKind::Simplex,
            LpSolver::PrimalDual => LpSolverKind::PrimalDual,
            LpSolver::Auto => LpSolverKind::Auto,
        }
    }
}

/// Overrides for the `spider-protocol` sender tunables (AIMD window steps
/// and price smoothing). Every field is optional; `None` keeps the
/// defaults of [`RateConfig`]/[`ProtocolConfig`], and omitted fields
/// deserialize as `None`, so configs written before these knobs existed
/// keep their meaning.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ProtocolTuning {
    /// Initial per-path AIMD window, XRP.
    pub initial_window_xrp: Option<f64>,
    /// Additive window increase per clean delivered ack, XRP.
    pub increase_xrp: Option<f64>,
    /// Multiplicative decrease factor on a marked/failed ack (0 < f < 1).
    pub decrease_factor: Option<f64>,
    /// Window floor, XRP.
    pub min_window_xrp: Option<f64>,
    /// Window ceiling, XRP.
    pub max_window_xrp: Option<f64>,
    /// EWMA weight of each new path-price observation (0 < γ ≤ 1).
    pub price_gamma: Option<f64>,
    /// Price attributed to a dropped unit.
    pub nack_price: Option<f64>,
}

impl ProtocolTuning {
    /// The `spider-protocol` sender configuration with these overrides
    /// applied on top of the defaults.
    pub fn to_config(self) -> ProtocolConfig {
        let mut cfg = ProtocolConfig::default();
        let rate = RateConfig::default();
        let amt =
            |xrp: Option<f64>, default: Amount| xrp.map(Amount::from_xrp_f64).unwrap_or(default);
        cfg.rate = RateConfig {
            initial_window: amt(self.initial_window_xrp, rate.initial_window),
            increase: amt(self.increase_xrp, rate.increase),
            decrease_factor: self.decrease_factor.unwrap_or(rate.decrease_factor),
            min_window: amt(self.min_window_xrp, rate.min_window),
            max_window: amt(self.max_window_xrp, rate.max_window),
        };
        if let Some(g) = self.price_gamma {
            cfg.price_gamma = g;
        }
        if let Some(p) = self.nack_price {
            cfg.nack_price = p;
        }
        cfg
    }
}

/// A routing scheme, as configured in an experiment file.
///
/// (`Eq` ended with the `f64` protocol tunables; `PartialEq` remains for
/// config round-trip checks.)
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SchemeConfig {
    /// Spider (Waterfilling) over `paths` edge-disjoint paths.
    SpiderWaterfilling {
        /// Candidate paths per pair (paper: 4).
        paths: usize,
    },
    /// Spider (LP): offline fluid-LP weights over `paths` disjoint paths.
    SpiderLp {
        /// Candidate paths per pair (paper: 4).
        paths: usize,
        /// Offline solver choice.
        solver: LpSolver,
    },
    /// Non-atomic shortest-path baseline.
    ShortestPath,
    /// Atomic per-transaction max-flow.
    MaxFlow,
    /// Atomic landmark routing with `landmarks` landmarks.
    SilentWhispers {
        /// Number of landmarks (highest-degree nodes).
        landmarks: usize,
    },
    /// Atomic embedding routing over `trees` spanning trees.
    SpeedyMurmurs {
        /// Number of spanning trees.
        trees: usize,
    },
    /// Spider (Pricing): the §5.3 price feedback as an online
    /// imbalance-aware scheme (this reproduction's extension).
    SpiderPricing {
        /// Candidate paths per pair.
        paths: usize,
    },
    /// The decentralized §5 protocol: router queues, price marking and
    /// per-path AIMD rate control (`spider-protocol`). Experiments select
    /// this together with `QueueingMode::PerChannelFifo`; `ExperimentConfig`
    /// auto-enables default queueing when it is left at `Lockstep`.
    SpiderProtocol {
        /// Candidate edge-disjoint paths per pair (paper: 4).
        paths: usize,
        /// Optional AIMD/price tunable overrides (`None` = defaults).
        tuning: Option<ProtocolTuning>,
    },
}

impl SchemeConfig {
    /// The §5 protocol scheme with default tunables (the common case).
    pub fn spider_protocol(paths: usize) -> SchemeConfig {
        SchemeConfig::SpiderProtocol {
            paths,
            tuning: None,
        }
    }

    /// The paper's six-scheme lineup (Fig. 6 legend order).
    pub fn paper_lineup() -> Vec<SchemeConfig> {
        vec![
            SchemeConfig::SpiderLp {
                paths: 4,
                solver: LpSolver::Auto,
            },
            SchemeConfig::SpiderWaterfilling { paths: 4 },
            SchemeConfig::MaxFlow,
            SchemeConfig::ShortestPath,
            SchemeConfig::SilentWhispers { landmarks: 3 },
            SchemeConfig::SpeedyMurmurs { trees: 3 },
        ]
    }

    /// The paper lineup plus this reproduction's extensions.
    pub fn extended_lineup() -> Vec<SchemeConfig> {
        let mut v = Self::paper_lineup();
        v.push(SchemeConfig::SpiderPricing { paths: 4 });
        v.push(SchemeConfig::spider_protocol(4));
        v
    }

    /// Scheme name as used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            SchemeConfig::SpiderWaterfilling { .. } => "spider-waterfilling",
            SchemeConfig::SpiderLp { .. } => "spider-lp",
            SchemeConfig::ShortestPath => "shortest-path",
            SchemeConfig::MaxFlow => "max-flow",
            SchemeConfig::SilentWhispers { .. } => "silentwhispers",
            SchemeConfig::SpeedyMurmurs { .. } => "speedymurmurs",
            SchemeConfig::SpiderPricing { .. } => "spider-pricing",
            SchemeConfig::SpiderProtocol { .. } => "spider-protocol",
        }
    }

    /// Instantiates the router. `demands` is the long-term demand estimate
    /// (used only by Spider (LP), exactly as in §6.1); `delta_secs` is the
    /// confirmation delay of the fluid model.
    pub fn build(
        &self,
        topo: &Topology,
        demands: &PaymentGraph,
        delta_secs: f64,
    ) -> Box<dyn Router> {
        match *self {
            SchemeConfig::SpiderWaterfilling { paths } => Box::new(SpiderWaterfilling::new(paths)),
            SchemeConfig::SpiderLp { paths, solver } => Box::new(SpiderLp::new(
                topo,
                demands,
                delta_secs,
                paths,
                solver.into(),
            )),
            SchemeConfig::ShortestPath => Box::new(ShortestPath::new()),
            SchemeConfig::MaxFlow => Box::new(MaxFlow::new()),
            SchemeConfig::SilentWhispers { landmarks } => {
                Box::new(SilentWhispers::new(topo, landmarks))
            }
            SchemeConfig::SpeedyMurmurs { trees } => Box::new(SpeedyMurmurs::new(topo, trees)),
            SchemeConfig::SpiderPricing { paths } => {
                Box::new(spider_routing::SpiderPricing::new(paths))
            }
            SchemeConfig::SpiderProtocol { paths, tuning } => Box::new(match tuning {
                Some(t) => ProtocolRouter::with_config(paths, t.to_config()),
                None => ProtocolRouter::new(paths),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spider_topology::gen;
    use spider_types::Amount;

    #[test]
    fn lineup_has_six_schemes_with_unique_names() {
        let lineup = SchemeConfig::paper_lineup();
        assert_eq!(lineup.len(), 6);
        let mut names: Vec<&str> = lineup.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn all_schemes_build() {
        let topo = gen::paper_example_topology(Amount::from_xrp(1000));
        let demands = spider_paygraph::examples::paper_example_demands();
        for cfg in SchemeConfig::paper_lineup() {
            let router = cfg.build(&topo, &demands, 0.5);
            assert_eq!(router.name(), cfg.name());
        }
    }

    #[test]
    fn atomicity_flags_match_paper() {
        let topo = gen::paper_example_topology(Amount::from_xrp(1000));
        let demands = spider_paygraph::examples::paper_example_demands();
        let atomic = [false, false, true, false, true, true]; // lineup order
        for (cfg, want) in SchemeConfig::paper_lineup().iter().zip(atomic) {
            assert_eq!(
                cfg.build(&topo, &demands, 0.5).atomic(),
                want,
                "{}",
                cfg.name()
            );
        }
    }

    #[test]
    fn protocol_scheme_builds_and_is_nonatomic() {
        let topo = gen::paper_example_topology(Amount::from_xrp(1000));
        let demands = spider_paygraph::examples::paper_example_demands();
        let cfg = SchemeConfig::spider_protocol(4);
        let router = cfg.build(&topo, &demands, 0.5);
        assert_eq!(router.name(), "spider-protocol");
        assert!(!router.atomic());
    }

    #[test]
    fn serde_round_trip() {
        for cfg in SchemeConfig::extended_lineup() {
            let json = serde_json::to_string(&cfg).unwrap();
            let back: SchemeConfig = serde_json::from_str(&json).unwrap();
            assert_eq!(cfg, back);
        }
    }
}
