//! Declarative routing-scheme configuration.

use serde::{Deserialize, Serialize};
use spider_paygraph::PaymentGraph;
use spider_protocol::ProtocolRouter;
use spider_routing::{
    LpSolverKind, MaxFlow, ShortestPath, SilentWhispers, SpeedyMurmurs, SpiderLp,
    SpiderWaterfilling,
};
use spider_sim::Router;
use spider_topology::Topology;

/// Which offline solver Spider (LP) uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LpSolver {
    /// Exact dense simplex.
    Simplex,
    /// Decentralized primal-dual iteration.
    PrimalDual,
    /// Size-based automatic choice.
    Auto,
}

impl From<LpSolver> for LpSolverKind {
    fn from(s: LpSolver) -> LpSolverKind {
        match s {
            LpSolver::Simplex => LpSolverKind::Simplex,
            LpSolver::PrimalDual => LpSolverKind::PrimalDual,
            LpSolver::Auto => LpSolverKind::Auto,
        }
    }
}

/// A routing scheme, as configured in an experiment file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchemeConfig {
    /// Spider (Waterfilling) over `paths` edge-disjoint paths.
    SpiderWaterfilling {
        /// Candidate paths per pair (paper: 4).
        paths: usize,
    },
    /// Spider (LP): offline fluid-LP weights over `paths` disjoint paths.
    SpiderLp {
        /// Candidate paths per pair (paper: 4).
        paths: usize,
        /// Offline solver choice.
        solver: LpSolver,
    },
    /// Non-atomic shortest-path baseline.
    ShortestPath,
    /// Atomic per-transaction max-flow.
    MaxFlow,
    /// Atomic landmark routing with `landmarks` landmarks.
    SilentWhispers {
        /// Number of landmarks (highest-degree nodes).
        landmarks: usize,
    },
    /// Atomic embedding routing over `trees` spanning trees.
    SpeedyMurmurs {
        /// Number of spanning trees.
        trees: usize,
    },
    /// Spider (Pricing): the §5.3 price feedback as an online
    /// imbalance-aware scheme (this reproduction's extension).
    SpiderPricing {
        /// Candidate paths per pair.
        paths: usize,
    },
    /// The decentralized §5 protocol: router queues, price marking and
    /// per-path AIMD rate control (`spider-protocol`). Experiments select
    /// this together with `QueueingMode::PerChannelFifo`; `ExperimentConfig`
    /// auto-enables default queueing when it is left at `Lockstep`.
    SpiderProtocol {
        /// Candidate edge-disjoint paths per pair (paper: 4).
        paths: usize,
    },
}

impl SchemeConfig {
    /// The paper's six-scheme lineup (Fig. 6 legend order).
    pub fn paper_lineup() -> Vec<SchemeConfig> {
        vec![
            SchemeConfig::SpiderLp {
                paths: 4,
                solver: LpSolver::Auto,
            },
            SchemeConfig::SpiderWaterfilling { paths: 4 },
            SchemeConfig::MaxFlow,
            SchemeConfig::ShortestPath,
            SchemeConfig::SilentWhispers { landmarks: 3 },
            SchemeConfig::SpeedyMurmurs { trees: 3 },
        ]
    }

    /// The paper lineup plus this reproduction's extensions.
    pub fn extended_lineup() -> Vec<SchemeConfig> {
        let mut v = Self::paper_lineup();
        v.push(SchemeConfig::SpiderPricing { paths: 4 });
        v.push(SchemeConfig::SpiderProtocol { paths: 4 });
        v
    }

    /// Scheme name as used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            SchemeConfig::SpiderWaterfilling { .. } => "spider-waterfilling",
            SchemeConfig::SpiderLp { .. } => "spider-lp",
            SchemeConfig::ShortestPath => "shortest-path",
            SchemeConfig::MaxFlow => "max-flow",
            SchemeConfig::SilentWhispers { .. } => "silentwhispers",
            SchemeConfig::SpeedyMurmurs { .. } => "speedymurmurs",
            SchemeConfig::SpiderPricing { .. } => "spider-pricing",
            SchemeConfig::SpiderProtocol { .. } => "spider-protocol",
        }
    }

    /// Instantiates the router. `demands` is the long-term demand estimate
    /// (used only by Spider (LP), exactly as in §6.1); `delta_secs` is the
    /// confirmation delay of the fluid model.
    pub fn build(
        &self,
        topo: &Topology,
        demands: &PaymentGraph,
        delta_secs: f64,
    ) -> Box<dyn Router> {
        match *self {
            SchemeConfig::SpiderWaterfilling { paths } => Box::new(SpiderWaterfilling::new(paths)),
            SchemeConfig::SpiderLp { paths, solver } => Box::new(SpiderLp::new(
                topo,
                demands,
                delta_secs,
                paths,
                solver.into(),
            )),
            SchemeConfig::ShortestPath => Box::new(ShortestPath::new()),
            SchemeConfig::MaxFlow => Box::new(MaxFlow::new()),
            SchemeConfig::SilentWhispers { landmarks } => {
                Box::new(SilentWhispers::new(topo, landmarks))
            }
            SchemeConfig::SpeedyMurmurs { trees } => Box::new(SpeedyMurmurs::new(topo, trees)),
            SchemeConfig::SpiderPricing { paths } => {
                Box::new(spider_routing::SpiderPricing::new(paths))
            }
            SchemeConfig::SpiderProtocol { paths } => Box::new(ProtocolRouter::new(paths)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spider_topology::gen;
    use spider_types::Amount;

    #[test]
    fn lineup_has_six_schemes_with_unique_names() {
        let lineup = SchemeConfig::paper_lineup();
        assert_eq!(lineup.len(), 6);
        let mut names: Vec<&str> = lineup.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn all_schemes_build() {
        let topo = gen::paper_example_topology(Amount::from_xrp(1000));
        let demands = spider_paygraph::examples::paper_example_demands();
        for cfg in SchemeConfig::paper_lineup() {
            let router = cfg.build(&topo, &demands, 0.5);
            assert_eq!(router.name(), cfg.name());
        }
    }

    #[test]
    fn atomicity_flags_match_paper() {
        let topo = gen::paper_example_topology(Amount::from_xrp(1000));
        let demands = spider_paygraph::examples::paper_example_demands();
        let atomic = [false, false, true, false, true, true]; // lineup order
        for (cfg, want) in SchemeConfig::paper_lineup().iter().zip(atomic) {
            assert_eq!(
                cfg.build(&topo, &demands, 0.5).atomic(),
                want,
                "{}",
                cfg.name()
            );
        }
    }

    #[test]
    fn protocol_scheme_builds_and_is_nonatomic() {
        let topo = gen::paper_example_topology(Amount::from_xrp(1000));
        let demands = spider_paygraph::examples::paper_example_demands();
        let cfg = SchemeConfig::SpiderProtocol { paths: 4 };
        let router = cfg.build(&topo, &demands, 0.5);
        assert_eq!(router.name(), "spider-protocol");
        assert!(!router.atomic());
    }

    #[test]
    fn serde_round_trip() {
        for cfg in SchemeConfig::extended_lineup() {
            let json = serde_json::to_string(&cfg).unwrap();
            let back: SchemeConfig = serde_json::from_str(&json).unwrap();
            assert_eq!(cfg, back);
        }
    }
}
