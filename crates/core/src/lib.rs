//! # spider-core
//!
//! The top of the stack: a declarative experiment API tying together
//! topologies, workloads, routing schemes and the simulator, plus the
//! transport-layer extensions sketched in §4 (window-based congestion
//! control) and machine-readable result output.
//!
//! ## Quick start
//!
//! ```
//! use spider_core::{ExperimentConfig, SchemeConfig, TopologyConfig};
//! use spider_sim::WorkloadConfig;
//!
//! let report = ExperimentConfig {
//!     topology: TopologyConfig::PaperExample { capacity_xrp: 200 },
//!     workload: WorkloadConfig::small(200, 100.0),
//!     scheme: SchemeConfig::SpiderWaterfilling { paths: 4 },
//!     seed: 7,
//!     ..ExperimentConfig::default()
//! }
//! .run()
//! .unwrap();
//! assert!(report.success_ratio() > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod congestion;
pub mod experiment;
pub mod output;
pub mod scheme;

pub use experiment::{run_sweep, seed_scheme_grid, ExperimentConfig, SweepJob, TopologyConfig};
pub use scheme::{ProtocolTuning, SchemeConfig};
