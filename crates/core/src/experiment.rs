//! Declarative experiments: topology + workload + scheme + seed → report.

use crate::scheme::SchemeConfig;
use serde::{Deserialize, Serialize};
use spider_dynamics::{ChurnSchedule, DynamicsConfig};
use spider_faults::{FaultConfig, FaultPlan};
use spider_overload::{OverloadConfig, OverloadPlan};
use spider_paygraph::PaymentGraph;
use spider_sim::{SimConfig, SimReport, Simulation, Workload, WorkloadConfig};
use spider_topology::{analysis, gen, Topology};
use spider_types::{Amount, DetRng, Result, SimTime, SpiderError};

/// Topology selection for an experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TopologyConfig {
    /// The deterministic 32-node / 152-edge ISP-like graph of §6.1.
    Isp {
        /// Uniform per-channel capacity (XRP).
        capacity_xrp: u64,
    },
    /// A Ripple-like scale-free graph (§6.1 substitution — see DESIGN.md).
    RippleLike {
        /// Node count (3,774 reproduces the paper's scale).
        nodes: usize,
        /// Uniform per-channel capacity (XRP).
        capacity_xrp: u64,
    },
    /// The 5-node §5.1 example topology.
    PaperExample {
        /// Uniform per-channel capacity (XRP).
        capacity_xrp: u64,
    },
    /// Watts–Strogatz small world.
    SmallWorld {
        /// Node count.
        nodes: usize,
        /// Even lattice degree.
        k: usize,
        /// Rewiring probability.
        beta: f64,
        /// Uniform per-channel capacity (XRP).
        capacity_xrp: u64,
    },
    /// Barabási–Albert scale-free graph.
    ScaleFree {
        /// Node count.
        nodes: usize,
        /// Attachment edges per node.
        m: usize,
        /// Uniform per-channel capacity (XRP).
        capacity_xrp: u64,
    },
    /// A topology in the `spider-topology` text format.
    Text {
        /// The serialized topology.
        text: String,
    },
}

impl TopologyConfig {
    /// Materializes the topology. Random families draw from the `topology`
    /// fork of the experiment RNG, so the same seed always yields the same
    /// graph.
    pub fn build(&self, rng: &DetRng) -> Result<Topology> {
        let mut trng = rng.fork("topology");
        let topo = match self {
            TopologyConfig::Isp { capacity_xrp } => {
                gen::isp_topology(Amount::from_xrp(*capacity_xrp))
            }
            TopologyConfig::RippleLike {
                nodes,
                capacity_xrp,
            } => {
                let raw = gen::ripple_like(*nodes, Amount::from_xrp(*capacity_xrp), &mut trng);
                analysis::largest_component(&raw)
            }
            TopologyConfig::PaperExample { capacity_xrp } => {
                gen::paper_example_topology(Amount::from_xrp(*capacity_xrp))
            }
            TopologyConfig::SmallWorld {
                nodes,
                k,
                beta,
                capacity_xrp,
            } => {
                let raw = gen::watts_strogatz(
                    *nodes,
                    *k,
                    *beta,
                    Amount::from_xrp(*capacity_xrp),
                    &mut trng,
                );
                analysis::largest_component(&raw)
            }
            TopologyConfig::ScaleFree {
                nodes,
                m,
                capacity_xrp,
            } => gen::barabasi_albert(*nodes, *m, Amount::from_xrp(*capacity_xrp), &mut trng),
            TopologyConfig::Text { text } => spider_topology::io::from_text(text)?,
        };
        if topo.node_count() < 2 {
            return Err(SpiderError::InvalidConfig(
                "topology has fewer than 2 nodes".into(),
            ));
        }
        Ok(topo)
    }
}

/// A complete experiment description.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// The network.
    pub topology: TopologyConfig,
    /// The transaction workload.
    pub workload: WorkloadConfig,
    /// Engine parameters (Δ, MTU, polling, deadline, horizon…).
    pub sim: SimConfig,
    /// The routing scheme under test.
    pub scheme: SchemeConfig,
    /// Optional topology churn: a deterministic schedule of channel
    /// open/close/resize and node leave/join events generated from this
    /// config (via the `dynamics` fork of the experiment RNG) and applied
    /// mid-run. `None` = the paper's frozen-snapshot evaluation.
    pub dynamics: Option<DynamicsConfig>,
    /// Optional fault injection: a deterministic plan of message/ack
    /// loss, latency jitter, stuck units and node crash windows generated
    /// from this config (via the `faults` fork of the experiment RNG) and
    /// applied during the run. `None` = today's fault-free evaluation,
    /// bit-identical to builds without the fault subsystem.
    pub faults: Option<FaultConfig>,
    /// Optional adversarial overload: a deterministic plan of flash-crowd
    /// rate spikes, Zipf-skewed hot-pair redirects, liquidity-draining
    /// flows and griefing payments generated from this config (via the
    /// `overload` fork of the experiment RNG). The plan's workload
    /// transform is applied to the materialized transactions *after*
    /// demand estimation (the offline schemes plan for normal traffic;
    /// the attack is a surprise), and its griefing stream is installed
    /// into the engine. `None` = overload-free, bit-identical to builds
    /// without the overload subsystem.
    pub overload: Option<OverloadConfig>,
    /// Master seed; every random choice derives from it.
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            topology: TopologyConfig::Isp {
                capacity_xrp: 30_000,
            },
            workload: WorkloadConfig::small(1_000, 200.0),
            sim: SimConfig::default(),
            scheme: SchemeConfig::SpiderWaterfilling { paths: 4 },
            dynamics: None,
            faults: None,
            overload: None,
            seed: 0,
        }
    }
}

impl ExperimentConfig {
    /// The engine configuration actually used: `SpiderProtocol` needs the
    /// §5 queues for its feedback loop to close, so selecting it with
    /// queueing left at `Lockstep` auto-enables the default
    /// `PerChannelFifo` parameters.
    pub fn effective_sim(&self) -> SimConfig {
        let mut sim = self.sim.clone();
        if matches!(self.scheme, SchemeConfig::SpiderProtocol { .. })
            && matches!(sim.queueing, spider_sim::QueueingMode::Lockstep)
        {
            sim.queueing =
                spider_sim::QueueingMode::PerChannelFifo(spider_sim::QueueConfig::default());
        }
        sim
    }

    /// Runs the experiment end to end: build topology, generate workload,
    /// estimate the demand matrix (for Spider (LP)), instantiate the
    /// scheme, simulate, and verify fund conservation.
    ///
    /// Simulations start with warm candidate caches: the engine hands the
    /// workload's distinct (src, dst) pairs to
    /// [`Router::prewarm`](spider_sim::Router::prewarm), and the
    /// source-routed schemes batch-fill their per-pair path sets through
    /// `spider_routing::PathCache::prefill` instead of paying k BFS
    /// traversals per pair on the routing hot path (see
    /// `BENCH_pathfill.json`).
    pub fn run(&self) -> Result<SimReport> {
        let rng = DetRng::new(self.seed);
        let topo = self.topology.build(&rng)?;
        let mut wrng = rng.fork("workload");
        let mut workload = Workload::generate(topo.node_count(), &self.workload, &mut wrng);
        let demands = demand_graph(&workload, topo.node_count());
        let overload = self.apply_overload(&rng, &topo, &mut workload)?;
        let router = self
            .scheme
            .build(&topo, &demands, self.sim.confirmation_delay.as_secs_f64());
        let mut sim = Simulation::new(topo, workload, router, self.effective_sim())?;
        self.install_dynamics(&mut sim, &rng)?;
        self.install_faults(&mut sim, &rng)?;
        if let Some(plan) = overload {
            sim.set_overload_plan(plan);
        }
        let report = sim.run();
        sim.check_conservation();
        Ok(report)
    }

    /// [`ExperimentConfig::run`] with payment-lifecycle tracing forced on:
    /// returns the report together with the sealed
    /// [`Trace`](spider_sim::Trace) (JSONL / Chrome-renderable). The
    /// engine run is otherwise identical — tracing records observations
    /// without touching event order — so the report matches what
    /// [`ExperimentConfig::run`] produces for the same seed.
    pub fn run_traced(&self) -> Result<(SimReport, spider_sim::Trace)> {
        let rng = DetRng::new(self.seed);
        let topo = self.topology.build(&rng)?;
        let mut wrng = rng.fork("workload");
        let mut workload = Workload::generate(topo.node_count(), &self.workload, &mut wrng);
        let demands = demand_graph(&workload, topo.node_count());
        let overload = self.apply_overload(&rng, &topo, &mut workload)?;
        let router = self
            .scheme
            .build(&topo, &demands, self.sim.confirmation_delay.as_secs_f64());
        let mut cfg = self.effective_sim();
        cfg.obs.trace = true;
        let mut sim = Simulation::new(topo, workload, router, cfg)?;
        self.install_dynamics(&mut sim, &rng)?;
        self.install_faults(&mut sim, &rng)?;
        if let Some(plan) = overload {
            sim.set_overload_plan(plan);
        }
        let report = sim.run();
        sim.check_conservation();
        let trace = sim.take_trace().expect("tracing was enabled");
        Ok((report, trace))
    }

    /// [`ExperimentConfig::run`] with the drop-forensics flight recorder
    /// forced on: returns the report together with the sealed
    /// [`FlightRecorder`](spider_sim::FlightRecorder) holding one
    /// structured record per dropped unit plus the exact reason×channel
    /// root-cause table. A configured `obs.forensics_capacity` is
    /// respected; when left at `0` (disabled) the recorder ring holds the
    /// last 65 536 drops. Recording observes drops without touching event
    /// order, so the report matches what [`ExperimentConfig::run`]
    /// produces for the same seed.
    pub fn run_forensics(&self) -> Result<(SimReport, spider_sim::FlightRecorder)> {
        let rng = DetRng::new(self.seed);
        let topo = self.topology.build(&rng)?;
        let mut wrng = rng.fork("workload");
        let mut workload = Workload::generate(topo.node_count(), &self.workload, &mut wrng);
        let demands = demand_graph(&workload, topo.node_count());
        let overload = self.apply_overload(&rng, &topo, &mut workload)?;
        let router = self
            .scheme
            .build(&topo, &demands, self.sim.confirmation_delay.as_secs_f64());
        let mut cfg = self.effective_sim();
        if cfg.obs.forensics_capacity == 0 {
            cfg.obs.forensics_capacity = 65_536;
        }
        let mut sim = Simulation::new(topo, workload, router, cfg)?;
        self.install_dynamics(&mut sim, &rng)?;
        self.install_faults(&mut sim, &rng)?;
        if let Some(plan) = overload {
            sim.set_overload_plan(plan);
        }
        let report = sim.run();
        sim.check_conservation();
        let forensics = sim.take_forensics().expect("forensics was enabled");
        Ok((report, forensics))
    }

    /// Generates and installs the churn schedule, when configured.
    fn install_dynamics(&self, sim: &mut Simulation, rng: &DetRng) -> Result<()> {
        if let Some(dyn_cfg) = &self.dynamics {
            let mut drng = rng.fork("dynamics");
            let schedule = ChurnSchedule::generate(sim.topology(), dyn_cfg, &mut drng)?;
            sim.set_topology_events(schedule.events);
        }
        Ok(())
    }

    /// Generates and installs the fault plan, when configured. The plan
    /// derives from the `faults` fork of the experiment RNG, so fault
    /// schedules never perturb topology, workload or churn draws.
    fn install_faults(&self, sim: &mut Simulation, rng: &DetRng) -> Result<()> {
        if let Some(fault_cfg) = &self.faults {
            let mut frng = rng.fork("faults");
            let plan = FaultPlan::generate(sim.topology(), fault_cfg, &mut frng)?;
            sim.set_fault_plan(plan);
        }
        Ok(())
    }

    /// Generates the overload plan (when configured) and applies its
    /// workload transform in place: the flash-crowd time warp compresses
    /// arrival times (monotonically, preserving order) and the hot-pair /
    /// drain redirects rewrite (src, dst) with draws from the plan's
    /// dedicated transform stream. Returns the plan so the caller can
    /// hand it to [`Simulation::set_overload_plan`] for the runtime
    /// (griefing) half. The plan derives from the `overload` fork of the
    /// experiment RNG, so it never perturbs topology, workload, churn or
    /// fault draws.
    fn apply_overload(
        &self,
        rng: &DetRng,
        topo: &Topology,
        workload: &mut Workload,
    ) -> Result<Option<OverloadPlan>> {
        let Some(cfg) = &self.overload else {
            return Ok(None);
        };
        let mut orng = rng.fork("overload");
        let plan = OverloadPlan::generate(topo, cfg, &mut orng)?;
        let mut trng = DetRng::new(plan.transform_seed);
        for txn in &mut workload.txns {
            txn.time = SimTime::from_secs_f64(plan.warp_secs(txn.time.as_secs_f64()));
            let (src, dst) = plan.transform_pair(txn.src, txn.dst, &mut trng);
            txn.src = src;
            txn.dst = dst;
        }
        Ok(Some(plan))
    }

    /// Runs the experiment's topology and workload against a caller-built
    /// router (for schemes outside the [`SchemeConfig`] registry, e.g. the
    /// AIMD [`Windowed`](crate::congestion::Windowed) wrapper), using
    /// `self.sim` verbatim.
    pub fn run_with_router(&self, router: Box<dyn spider_sim::Router>) -> Result<SimReport> {
        let rng = DetRng::new(self.seed);
        let topo = self.topology.build(&rng)?;
        let mut wrng = rng.fork("workload");
        let mut workload = Workload::generate(topo.node_count(), &self.workload, &mut wrng);
        let overload = self.apply_overload(&rng, &topo, &mut workload)?;
        let mut sim = Simulation::new(topo, workload, router, self.sim.clone())?;
        self.install_dynamics(&mut sim, &rng)?;
        self.install_faults(&mut sim, &rng)?;
        if let Some(plan) = overload {
            sim.set_overload_plan(plan);
        }
        let report = sim.run();
        sim.check_conservation();
        Ok(report)
    }

    /// [`ExperimentConfig::run_with_router`] with payment-lifecycle tracing
    /// force-enabled, returning the sealed [`Trace`](spider_sim::Trace)
    /// alongside the report (the traced twin of
    /// [`ExperimentConfig::run_traced`] for caller-built routers).
    pub fn run_with_router_traced(
        &self,
        router: Box<dyn spider_sim::Router>,
    ) -> Result<(SimReport, spider_sim::Trace)> {
        let rng = DetRng::new(self.seed);
        let topo = self.topology.build(&rng)?;
        let mut wrng = rng.fork("workload");
        let mut workload = Workload::generate(topo.node_count(), &self.workload, &mut wrng);
        let overload = self.apply_overload(&rng, &topo, &mut workload)?;
        let mut cfg = self.sim.clone();
        cfg.obs.trace = true;
        let mut sim = Simulation::new(topo, workload, router, cfg)?;
        self.install_dynamics(&mut sim, &rng)?;
        self.install_faults(&mut sim, &rng)?;
        if let Some(plan) = overload {
            sim.set_overload_plan(plan);
        }
        let report = sim.run();
        sim.check_conservation();
        let trace = sim.take_trace().expect("tracing was enabled");
        Ok((report, trace))
    }

    /// Runs several schemes on the *identical* topology and workload (same
    /// seed), in parallel, returning reports in scheme order.
    pub fn run_schemes(&self, schemes: &[SchemeConfig]) -> Result<Vec<SimReport>> {
        let jobs: Vec<SweepJob> = schemes
            .iter()
            .map(|&scheme| {
                SweepJob::Scheme(ExperimentConfig {
                    scheme,
                    ..self.clone()
                })
            })
            .collect();
        run_sweep(&jobs)
    }
}

/// One unit of work for [`run_sweep`].
pub enum SweepJob {
    /// Run the config's scheme through the [`SchemeConfig`] registry.
    Scheme(ExperimentConfig),
    /// Run the config against a caller-built router (e.g. the
    /// [`Windowed`](crate::congestion::Windowed) wrapper). The router is
    /// constructed *inside* the worker thread, so the factory — not the
    /// router — must be `Send + Sync`.
    Custom {
        /// Topology, workload, engine parameters and seed (the `scheme`
        /// field is ignored).
        cfg: ExperimentConfig,
        /// Builds the router on the worker thread.
        build: Box<dyn Fn() -> Box<dyn spider_sim::Router> + Send + Sync>,
    },
}

impl SweepJob {
    fn run(&self) -> Result<SimReport> {
        match self {
            SweepJob::Scheme(cfg) => cfg.run(),
            SweepJob::Custom { cfg, build } => cfg.run_with_router(build()),
        }
    }
}

/// Runs a batch of experiment jobs across `std::thread::scope` workers —
/// one per available core, capped by the job count — pulling from a
/// shared atomic work queue. Results come back in job order, so callers
/// can zip them against their grid. Every job is seeded independently;
/// scheduling order cannot affect results.
///
/// This is the fan-out engine behind the figure binaries: a
/// (seed × scheme) or (capacity × scheme) grid saturates the machine
/// instead of running one batch of schemes at a time.
pub fn run_sweep(jobs: &[SweepJob]) -> Result<Vec<SimReport>> {
    let n = jobs.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut out: Vec<Option<Result<SimReport>>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..workers {
            let next = &next;
            handles.push(scope.spawn(move || {
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    local.push((i, jobs[i].run()));
                }
                local
            }));
        }
        for h in handles {
            for (i, r) in h.join().expect("sweep worker panicked") {
                out[i] = Some(r);
            }
        }
    });
    out.into_iter().map(|r| r.expect("every job ran")).collect()
}

/// The (seed × scheme) job grid, seed-major: the row for seed `s` and
/// scheme `c` lands at index `s_idx * schemes.len() + c_idx`.
pub fn seed_scheme_grid(
    base: &ExperimentConfig,
    seeds: &[u64],
    schemes: &[SchemeConfig],
) -> Vec<SweepJob> {
    let mut jobs = Vec::with_capacity(seeds.len() * schemes.len());
    for &seed in seeds {
        for &scheme in schemes {
            jobs.push(SweepJob::Scheme(ExperimentConfig {
                seed,
                scheme,
                ..base.clone()
            }));
        }
    }
    jobs
}

/// Converts a workload into the long-term demand matrix (XRP/s) that
/// Spider (LP) optimizes against.
pub fn demand_graph(workload: &Workload, n_nodes: usize) -> PaymentGraph {
    let like = workload.demand_matrix(n_nodes);
    let mut g = PaymentGraph::new(n_nodes);
    for (src, dst, rate) in like.rates {
        if rate > 0.0 {
            g.add_demand(src, dst, rate);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use spider_types::SimDuration;

    fn quick_sim() -> SimConfig {
        SimConfig {
            horizon: SimDuration::from_secs(20),
            ..SimConfig::default()
        }
    }

    #[test]
    fn runs_end_to_end_on_paper_example() {
        let report = ExperimentConfig {
            topology: TopologyConfig::PaperExample {
                capacity_xrp: 1_000,
            },
            workload: WorkloadConfig::small(300, 100.0),
            sim: quick_sim(),
            scheme: SchemeConfig::SpiderWaterfilling { paths: 4 },
            dynamics: None,
            faults: None,
            overload: None,
            seed: 1,
        }
        .run()
        .unwrap();
        assert_eq!(report.attempted_payments, 300);
        assert!(
            report.success_ratio() > 0.5,
            "ratio {}",
            report.success_ratio()
        );
    }

    #[test]
    fn same_seed_same_report() {
        let cfg = ExperimentConfig {
            topology: TopologyConfig::ScaleFree {
                nodes: 30,
                m: 2,
                capacity_xrp: 500,
            },
            workload: WorkloadConfig::small(300, 150.0),
            sim: quick_sim(),
            scheme: SchemeConfig::ShortestPath,
            dynamics: None,
            faults: None,
            overload: None,
            seed: 9,
        };
        let a = cfg.run().unwrap();
        let b = cfg.run().unwrap();
        assert_eq!(a.completed_payments, b.completed_payments);
        assert_eq!(a.delivered_volume, b.delivered_volume);
    }

    #[test]
    fn different_seed_changes_workload() {
        let workload = WorkloadConfig {
            size: spider_sim::SizeDistribution::RippleIsp,
            ..WorkloadConfig::small(300, 150.0)
        };
        let base = ExperimentConfig {
            topology: TopologyConfig::Isp {
                capacity_xrp: 1_000,
            },
            workload,
            sim: quick_sim(),
            scheme: SchemeConfig::ShortestPath,
            dynamics: None,
            faults: None,
            overload: None,
            seed: 1,
        };
        let a = base.run().unwrap();
        let b = ExperimentConfig { seed: 2, ..base }.run().unwrap();
        assert_ne!(a.attempted_volume, b.attempted_volume);
        assert_ne!(a.delivered_volume, b.delivered_volume);
    }

    #[test]
    fn scheme_sweep_shares_workload() {
        let cfg = ExperimentConfig {
            topology: TopologyConfig::Isp {
                capacity_xrp: 2_000,
            },
            workload: WorkloadConfig::small(200, 100.0),
            sim: quick_sim(),
            scheme: SchemeConfig::ShortestPath,
            dynamics: None,
            faults: None,
            overload: None,
            seed: 5,
        };
        let reports = cfg
            .run_schemes(&[
                SchemeConfig::ShortestPath,
                SchemeConfig::SpiderWaterfilling { paths: 4 },
            ])
            .unwrap();
        assert_eq!(reports.len(), 2);
        // Identical workloads → identical attempted volume.
        assert_eq!(reports[0].attempted_volume, reports[1].attempted_volume);
        assert_eq!(reports[0].scheme, "shortest-path");
        assert_eq!(reports[1].scheme, "spider-waterfilling");
    }

    #[test]
    fn run_sweep_preserves_job_order_and_determinism() {
        let base = ExperimentConfig {
            topology: TopologyConfig::Isp {
                capacity_xrp: 2_000,
            },
            workload: WorkloadConfig::small(200, 100.0),
            sim: quick_sim(),
            scheme: SchemeConfig::ShortestPath,
            dynamics: None,
            faults: None,
            overload: None,
            seed: 0,
        };
        let seeds = [3u64, 11];
        let schemes = [
            SchemeConfig::ShortestPath,
            SchemeConfig::SpiderWaterfilling { paths: 4 },
        ];
        let jobs = seed_scheme_grid(&base, &seeds, &schemes);
        assert_eq!(jobs.len(), 4);
        let swept = run_sweep(&jobs).unwrap();
        // Same grid run sequentially must match the parallel sweep
        // element-wise (worker scheduling cannot leak into results).
        for (i, report) in swept.iter().enumerate() {
            let (seed, scheme) = (seeds[i / schemes.len()], schemes[i % schemes.len()]);
            let solo = ExperimentConfig {
                seed,
                scheme,
                ..base.clone()
            }
            .run()
            .unwrap();
            assert_eq!(report.scheme, solo.scheme);
            assert_eq!(report.completed_payments, solo.completed_payments);
            assert_eq!(report.delivered_volume, solo.delivered_volume);
        }
        // Custom jobs run the caller's router.
        let custom = run_sweep(&[SweepJob::Custom {
            cfg: base.clone(),
            build: Box::new(|| {
                Box::new(crate::congestion::Windowed::new(
                    spider_routing::ShortestPath::new(),
                    crate::congestion::WindowConfig::default(),
                ))
            }),
        }])
        .unwrap();
        assert_eq!(custom.len(), 1);
        assert_eq!(custom[0].scheme, "shortest-path");
    }

    #[test]
    fn text_topology_round_trip() {
        let topo = gen::cycle(4, Amount::from_xrp(100));
        let text = spider_topology::io::to_text(&topo);
        let cfg = TopologyConfig::Text { text };
        let built = cfg.build(&DetRng::new(0)).unwrap();
        assert_eq!(built, topo);
    }

    #[test]
    fn invalid_topology_is_rejected() {
        let cfg = TopologyConfig::Text {
            text: "nodes 1\n".to_string(),
        };
        assert!(cfg.build(&DetRng::new(0)).is_err());
    }

    #[test]
    fn demand_graph_matches_workload_rates() {
        let mut rng = DetRng::new(3);
        let w = Workload::generate(6, &WorkloadConfig::small(2_000, 500.0), &mut rng);
        let g = demand_graph(&w, 6);
        let expect = w.total_volume().as_xrp() / w.duration().as_secs_f64();
        assert!((g.total_demand() - expect).abs() / expect < 1e-9);
    }
}
