//! Transport-layer congestion control (§4.1 extension).
//!
//! The paper defers congestion-control design but sketches its interface:
//! "Spider hosts use a congestion control algorithm to determine the rate
//! to send transaction units for different payments … hosts can use
//! implicit signals like … or explicit signals from the routers."
//!
//! [`Windowed`] wraps any inner router with a per-(sender, receiver)
//! AIMD window on the amount outstanding per attempt: each successful unit
//! lock grows the pair's window additively; each failed lock shrinks it
//! multiplicatively. Routing requests are clamped to the window before the
//! inner scheme sees them, so a congested pair backs off and retries from
//! the pending queue instead of hammering depleted channels.

use spider_sim::{NetworkView, RouteProposal, RouteRequest, Router, UnitAck, UnitOutcome};
use spider_types::{Amount, NodeId};
use std::collections::{HashMap, VecDeque};

/// AIMD parameters for [`Windowed`].
#[derive(Debug, Clone)]
pub struct WindowConfig {
    /// Initial window per pair.
    pub initial: Amount,
    /// Additive increase per successfully locked unit.
    pub increase: Amount,
    /// Multiplicative decrease factor on a failed lock (0 < f < 1).
    pub decrease_factor: f64,
    /// Window floor (never decays below this).
    pub min_window: Amount,
    /// Window ceiling.
    pub max_window: Amount,
    /// Maximum number of (sender, receiver) pairs tracked. Long
    /// multi-million-pair runs would otherwise grow the table without
    /// bound; beyond the cap the oldest-inserted pair is evicted (it
    /// silently resets to the initial window if seen again).
    pub max_tracked_pairs: usize,
}

impl Default for WindowConfig {
    fn default() -> Self {
        WindowConfig {
            initial: Amount::from_xrp(200),
            increase: Amount::from_xrp(10),
            decrease_factor: 0.5,
            min_window: Amount::from_xrp(10),
            max_window: Amount::from_xrp(10_000),
            max_tracked_pairs: 1 << 20,
        }
    }
}

/// AIMD windowed wrapper around an inner routing scheme.
///
/// The window bounds the amount requested *per attempt*, not the value in
/// flight: this is deliberately the coarse §4.1 transport sketch. The
/// §5 protocol (`spider-protocol`) replaces it with per-path controllers
/// that do track in-flight value against acknowledgements.
pub struct Windowed<R> {
    inner: R,
    cfg: WindowConfig,
    windows: HashMap<(NodeId, NodeId), Amount>,
    /// Insertion order of tracked pairs, for deterministic FIFO eviction
    /// once `max_tracked_pairs` is exceeded.
    insertion_order: VecDeque<(NodeId, NodeId)>,
    /// Set by [`Router::configure`] in §5 queueing mode (and latched on
    /// the first ack as a backstop for callers that skip `configure`).
    /// When set, `locked` outcomes mean only "accepted into a queue", so
    /// window growth uses the definitive ack signal — otherwise every
    /// unit would drive two AIMD steps and congested pairs would grow
    /// their windows on mere queue admission.
    ack_driven: bool,
}

impl<R: Router> Windowed<R> {
    /// Wraps `inner` with the given window parameters.
    pub fn new(inner: R, cfg: WindowConfig) -> Self {
        assert!(
            cfg.decrease_factor > 0.0 && cfg.decrease_factor < 1.0,
            "decrease factor must be in (0, 1)"
        );
        assert!(cfg.max_tracked_pairs > 0, "pair cap must be positive");
        Windowed {
            inner,
            cfg,
            windows: HashMap::new(),
            insertion_order: VecDeque::new(),
            ack_driven: false,
        }
    }

    /// Current window of a pair.
    pub fn window(&self, src: NodeId, dst: NodeId) -> Amount {
        self.windows
            .get(&(src, dst))
            .copied()
            .unwrap_or(self.cfg.initial)
    }

    /// Number of pairs currently tracked (≤ the configured cap).
    pub fn tracked_pairs(&self) -> usize {
        self.windows.len()
    }

    /// Stores a pair's window, evicting the oldest-inserted pair when the
    /// table is full. Eviction order is insertion order, so it is
    /// deterministic regardless of the map's internal layout.
    fn store(&mut self, key: (NodeId, NodeId), window: Amount) {
        if self.windows.insert(key, window).is_none() {
            self.insertion_order.push_back(key);
            if self.windows.len() > self.cfg.max_tracked_pairs {
                if let Some(evict) = self.insertion_order.pop_front() {
                    self.windows.remove(&evict);
                }
            }
        }
    }

    /// Applies one AIMD step to a pair's window.
    fn adjust(&mut self, src: NodeId, dst: NodeId, success: bool) {
        let cur = self.window(src, dst);
        let next = if success {
            (cur + self.cfg.increase).min(self.cfg.max_window)
        } else {
            cur.mul_f64(self.cfg.decrease_factor)
                .max(self.cfg.min_window)
        };
        self.store((src, dst), next);
    }
}

impl<R: Router> Router for Windowed<R> {
    fn name(&self) -> &'static str {
        // Report the inner scheme's identity: windowing is a transport
        // knob, not a different routing algorithm.
        self.inner.name()
    }

    fn atomic(&self) -> bool {
        self.inner.atomic()
    }

    fn configure(&mut self, queueing: bool) {
        self.ack_driven = queueing;
        self.inner.configure(queueing);
    }

    fn initialize(&mut self, view: &NetworkView<'_>) {
        self.inner.initialize(view);
    }

    fn wants_prewarm(&self) -> bool {
        self.inner.wants_prewarm()
    }

    fn prewarm(&mut self, pairs: &[(NodeId, NodeId)], view: &NetworkView<'_>) {
        self.inner.prewarm(pairs, view);
    }

    fn on_topology_change(&mut self, update: &spider_sim::TopologyUpdate, view: &NetworkView<'_>) {
        // Windowing is per-pair, not per-path: the windows stay valid
        // across path-set changes, only the inner scheme needs repair.
        self.inner.on_topology_change(update, view);
    }

    fn route(&mut self, req: &RouteRequest, view: &NetworkView<'_>) -> Vec<RouteProposal> {
        let window = self.window(req.src, req.dst);
        let clamped = RouteRequest {
            remaining: req.remaining.min(window),
            ..req.clone()
        };
        if clamped.remaining.is_zero() {
            return Vec::new();
        }
        self.inner.route(&clamped, view)
    }

    fn on_unit_outcome(&mut self, outcome: &UnitOutcome, view: &NetworkView<'_>) {
        let (src, dst) = {
            let entry = view.path(outcome.path);
            (entry.source(), entry.dest())
        };
        // In ack-driven (queueing) operation, a positive outcome is only
        // queue admission — growth waits for the ack. Rejections remain a
        // hard back-off signal in both modes, and a post-lock fault
        // notification (locked but never settled) backs the pair off like
        // a rejection rather than rewarding the lock.
        let ok = outcome.locked && outcome.fault.is_none();
        if !ok || !self.ack_driven {
            self.adjust(src, dst, ok);
        }
        self.inner.on_unit_outcome(outcome, view);
    }

    fn window_gauge(&self) -> Option<f64> {
        // Sum of the wrapper's own tracked windows plus whatever the
        // inner scheme reports (per-path controllers, when wrapping the
        // §5 protocol). Sorted by pair key before reducing: float
        // addition is not associative, so summing in hash order would
        // make the sampled series differ run to run.
        let mut windows: Vec<_> = self.windows.iter().collect();
        windows.sort_unstable_by_key(|(&k, _)| k);
        let own: f64 = windows.iter().map(|(_, w)| w.as_xrp()).sum();
        Some(own + self.inner.window_gauge().unwrap_or(0.0))
    }

    fn observability(&self) -> spider_sim::RouterObs {
        let mut obs = self.inner.observability();
        // Sorted by pair key: window_hist fill order must not depend on
        // hash-map iteration.
        let mut pairs: Vec<_> = self.windows.iter().collect();
        pairs.sort_unstable_by_key(|(&k, _)| k);
        obs.windows_xrp
            .extend(pairs.iter().map(|(_, w)| w.as_xrp()));
        obs.counters.push((
            "windowed_tracked_pairs".to_string(),
            self.windows.len() as u64,
        ));
        obs
    }

    fn on_unit_ack(&mut self, ack: &UnitAck, view: &NetworkView<'_>) {
        // §5 queueing mode: the definitive congestion signal is the ack's
        // mark bit, so the window reacts to it (a marked or dropped unit
        // backs the pair off even though its initial admission succeeded).
        self.ack_driven = true;
        let (src, dst) = {
            let entry = view.path(ack.path);
            (entry.source(), entry.dest())
        };
        self.adjust(src, dst, ack.delivered && !ack.stamp.marked);
        self.inner.on_unit_ack(ack, view);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spider_routing::ShortestPath;
    use spider_sim::{ChannelState, PathTable};
    use spider_types::{PaymentId, SimTime};

    fn xrp(x: u64) -> Amount {
        Amount::from_xrp(x)
    }

    fn view_fixture() -> (spider_topology::Topology, Vec<ChannelState>) {
        let t = spider_topology::gen::line(3, xrp(1000));
        let ch = t
            .channels()
            .map(|(_, c)| ChannelState::split_equally(c.capacity))
            .collect();
        (t, ch)
    }

    fn req(amount: Amount) -> RouteRequest {
        RouteRequest {
            payment: PaymentId(0),
            src: NodeId(0),
            dst: NodeId(2),
            remaining: amount,
            total: amount,
            mtu: xrp(10),
            attempt: 0,
        }
    }

    fn outcome(view: &NetworkView<'_>, locked: bool) -> UnitOutcome {
        UnitOutcome {
            payment: PaymentId(0),
            path: view.intern(&[NodeId(0), NodeId(1), NodeId(2)]),
            amount: xrp(10),
            locked,
            fault: None,
        }
    }

    #[test]
    fn clamps_to_window() {
        let (t, ch) = view_fixture();
        let paths = PathTable::new();
        let view = NetworkView {
            topo: &t,
            channels: &ch,
            paths: &paths,
            now: SimTime::ZERO,
        };
        let mut w = Windowed::new(
            ShortestPath::new(),
            WindowConfig {
                initial: xrp(50),
                ..WindowConfig::default()
            },
        );
        let props = w.route(&req(xrp(500)), &view);
        assert_eq!(props.iter().map(|p| p.amount).sum::<Amount>(), xrp(50));
    }

    #[test]
    fn aimd_dynamics() {
        let (t, ch) = view_fixture();
        let paths = PathTable::new();
        let view = NetworkView {
            topo: &t,
            channels: &ch,
            paths: &paths,
            now: SimTime::ZERO,
        };
        let mut w = Windowed::new(
            ShortestPath::new(),
            WindowConfig {
                initial: xrp(100),
                increase: xrp(10),
                decrease_factor: 0.5,
                min_window: xrp(5),
                max_window: xrp(150),
                ..WindowConfig::default()
            },
        );
        w.on_unit_outcome(&outcome(&view, true), &view);
        assert_eq!(w.window(NodeId(0), NodeId(2)), xrp(110));
        w.on_unit_outcome(&outcome(&view, false), &view);
        assert_eq!(w.window(NodeId(0), NodeId(2)), xrp(55));
        // Ceiling.
        for _ in 0..20 {
            w.on_unit_outcome(&outcome(&view, true), &view);
        }
        assert_eq!(w.window(NodeId(0), NodeId(2)), xrp(150));
        // Floor.
        for _ in 0..20 {
            w.on_unit_outcome(&outcome(&view, false), &view);
        }
        assert_eq!(w.window(NodeId(0), NodeId(2)), xrp(5));
    }

    #[test]
    fn window_is_per_pair() {
        let (t, ch) = view_fixture();
        let paths = PathTable::new();
        let view = NetworkView {
            topo: &t,
            channels: &ch,
            paths: &paths,
            now: SimTime::ZERO,
        };
        let mut w = Windowed::new(ShortestPath::new(), WindowConfig::default());
        w.on_unit_outcome(&outcome(&view, false), &view);
        assert!(w.window(NodeId(0), NodeId(2)) < WindowConfig::default().initial);
        assert_eq!(
            w.window(NodeId(1), NodeId(2)),
            WindowConfig::default().initial
        );
    }

    #[test]
    fn zero_window_returns_no_proposals() {
        let (t, ch) = view_fixture();
        let paths = PathTable::new();
        let view = NetworkView {
            topo: &t,
            channels: &ch,
            paths: &paths,
            now: SimTime::ZERO,
        };
        let mut w = Windowed::new(ShortestPath::new(), WindowConfig::default());
        let props = w.route(&req(Amount::ZERO), &view);
        assert!(props.is_empty());
    }

    #[test]
    fn preserves_inner_identity() {
        let w = Windowed::new(ShortestPath::new(), WindowConfig::default());
        assert_eq!(w.name(), "shortest-path");
        assert!(!w.atomic());
    }

    #[test]
    fn eviction_cap_bounds_the_table() {
        // Ten disjoint channels give ten distinct (sender, receiver) pairs.
        let mut b = spider_topology::Topology::builder(20);
        for i in 0..10u32 {
            b.channel(NodeId(i), NodeId(i + 10), xrp(10)).unwrap();
        }
        let t = b.build();
        let ch: Vec<ChannelState> = t
            .channels()
            .map(|(_, c)| ChannelState::split_equally(c.capacity))
            .collect();
        let paths = PathTable::new();
        let view = NetworkView {
            topo: &t,
            channels: &ch,
            paths: &paths,
            now: SimTime::ZERO,
        };
        let mut w = Windowed::new(
            ShortestPath::new(),
            WindowConfig {
                max_tracked_pairs: 4,
                ..WindowConfig::default()
            },
        );
        for i in 0..10u32 {
            let o = UnitOutcome {
                payment: PaymentId(0),
                path: view.intern(&[NodeId(i), NodeId(i + 10)]),
                amount: xrp(1),
                locked: false,
                fault: None,
            };
            w.on_unit_outcome(&o, &view);
        }
        assert_eq!(w.tracked_pairs(), 4, "table bounded at the cap");
        // Oldest pairs were evicted and read back as the initial window.
        assert_eq!(
            w.window(NodeId(0), NodeId(10)),
            WindowConfig::default().initial
        );
        // Newest still hold their decayed state.
        assert!(w.window(NodeId(9), NodeId(19)) < WindowConfig::default().initial);
    }

    #[test]
    fn marked_ack_backs_off_like_a_failure() {
        let (t, ch) = view_fixture();
        let paths = PathTable::new();
        let view = NetworkView {
            topo: &t,
            channels: &ch,
            paths: &paths,
            now: SimTime::ZERO,
        };
        let mut w = Windowed::new(ShortestPath::new(), WindowConfig::default());
        let mut stamp = spider_types::MarkStamp::CLEAR;
        stamp.absorb(1.0, true, spider_types::SimDuration::from_millis(200));
        let ack = spider_sim::UnitAck {
            payment: PaymentId(0),
            path: view.intern(&[NodeId(0), NodeId(1), NodeId(2)]),
            amount: xrp(10),
            delivered: true,
            stamp,
            drop_reason: None,
            drop_channel: None,
            rtt: spider_types::SimDuration::from_millis(600),
        };
        w.on_unit_ack(&ack, &view);
        assert!(w.window(NodeId(0), NodeId(2)) < WindowConfig::default().initial);
        // A clean delivered ack grows the window again.
        let clean = spider_sim::UnitAck {
            stamp: spider_types::MarkStamp::CLEAR,
            ..ack
        };
        let before = w.window(NodeId(0), NodeId(2));
        w.on_unit_ack(&clean, &view);
        assert!(w.window(NodeId(0), NodeId(2)) > before);
    }

    #[test]
    #[should_panic(expected = "decrease factor")]
    fn rejects_bad_decrease_factor() {
        let _ = Windowed::new(
            ShortestPath::new(),
            WindowConfig {
                decrease_factor: 1.5,
                ..WindowConfig::default()
            },
        );
    }
}
