//! # spider-dynamics
//!
//! Live-network churn for the Spider reproduction: deterministic
//! generation of [`TopologyEvent`] schedules — Poisson channel closes with
//! exponential reopen delays, mid-run channel spawns, capacity resizes,
//! node leave/join cycles, and periodic flap traces — all driven by a
//! [`DetRng`] fork so the same experiment seed always produces the same
//! churn.
//!
//! The paper evaluates Spider on frozen snapshots; this crate opens the
//! dynamics axis the related work treats as the hard case (SpeedyMurmurs'
//! on-demand repair under churn, Varma–Maguluri's stationary-regime
//! stability analysis). The engine applies the events mid-run
//! (`spider_sim::Simulation::set_topology_events`) and routers repair
//! their candidate caches incrementally
//! (`spider_routing::PathCache::on_topology_change`).
//!
//! Ids are stable across churn: a schedule never invents channels — it
//! closes, reopens and resizes the channels of the **union topology** the
//! simulation was built with. Channels that "open mid-run" are union
//! channels scheduled closed at `t = 0` and opened later.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize};
use spider_topology::Topology;
use spider_types::distr::{Distribution, Exponential};
use spider_types::{
    Amount, ChannelId, DetRng, NodeId, Result, SimTime, SpiderError, TopologyChange, TopologyEvent,
};

/// Parameters of a churn schedule. All rates are per simulated second over
/// the whole network; every distribution draws from the `DetRng` handed to
/// [`ChurnSchedule::generate`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DynamicsConfig {
    /// Poisson rate of channel-close events (events/s across the network).
    pub close_rate_per_sec: f64,
    /// Mean of the exponential delay after which a closed channel reopens.
    /// `None` = closes are permanent.
    pub reopen_mean_secs: Option<f64>,
    /// Poisson rate of capacity-resize events (events/s).
    pub resize_rate_per_sec: f64,
    /// Resize factors are drawn log-uniformly from this `[min, max]`
    /// range and applied to the channel's *original* (union-topology)
    /// capacity: each event samples an absolute target, so repeated
    /// resizes of one channel wander within the range instead of
    /// compounding toward zero or infinity.
    pub resize_factor_range: [f64; 2],
    /// Poisson rate of node-leave events (events/s). A leave closes every
    /// channel of the node; the node rejoins after the reopen delay
    /// (permanently gone when `reopen_mean_secs` is `None`).
    pub node_leave_rate_per_sec: f64,
    /// Fraction of channels that only come into existence mid-run: they
    /// are scheduled closed at `t = 0` and open at a uniform instant.
    pub spawn_fraction: f64,
    /// Number of *flapping* channels: each toggles closed/open with its
    /// own deterministic period and phase.
    pub flap_channels: usize,
    /// Mean flap period (seconds); each flapping channel's period is
    /// drawn uniformly in `[0.5, 1.5] ×` this mean, half closed half open.
    pub flap_period_secs: f64,
    /// Schedule horizon (seconds): no event is generated at or beyond it.
    pub horizon_secs: f64,
}

impl Default for DynamicsConfig {
    fn default() -> Self {
        DynamicsConfig {
            close_rate_per_sec: 0.5,
            reopen_mean_secs: Some(5.0),
            resize_rate_per_sec: 0.25,
            resize_factor_range: [0.5, 2.0],
            node_leave_rate_per_sec: 0.05,
            spawn_fraction: 0.05,
            flap_channels: 2,
            flap_period_secs: 6.0,
            horizon_secs: 20.0,
        }
    }
}

impl DynamicsConfig {
    /// A copy with every event rate (closes, resizes, node leaves, spawn
    /// fraction, flap count) scaled by `intensity` — the knob the
    /// `churn_resilience` benchmark sweeps. `0.0` yields an empty
    /// schedule.
    pub fn scaled(&self, intensity: f64) -> DynamicsConfig {
        DynamicsConfig {
            close_rate_per_sec: self.close_rate_per_sec * intensity,
            resize_rate_per_sec: self.resize_rate_per_sec * intensity,
            node_leave_rate_per_sec: self.node_leave_rate_per_sec * intensity,
            spawn_fraction: (self.spawn_fraction * intensity).min(0.9),
            flap_channels: (self.flap_channels as f64 * intensity).round() as usize,
            ..self.clone()
        }
    }

    /// Validates parameter sanity.
    pub fn validate(&self) -> Result<()> {
        let bad = |msg: &str| Err(SpiderError::InvalidConfig(msg.into()));
        if self.close_rate_per_sec < 0.0
            || self.resize_rate_per_sec < 0.0
            || self.node_leave_rate_per_sec < 0.0
        {
            return bad("churn rates must be non-negative");
        }
        if let Some(m) = self.reopen_mean_secs {
            if m <= 0.0 {
                return bad("reopen mean must be positive");
            }
        }
        let [lo, hi] = self.resize_factor_range;
        if !(lo > 0.0 && hi >= lo) {
            return bad("resize factor range must satisfy 0 < min <= max");
        }
        if !(0.0..=1.0).contains(&self.spawn_fraction) {
            return bad("spawn fraction must be in [0, 1]");
        }
        if self.flap_channels > 0 && self.flap_period_secs <= 0.0 {
            return bad("flap period must be positive");
        }
        if self.horizon_secs <= 0.0 {
            return bad("dynamics horizon must be positive");
        }
        Ok(())
    }
}

/// A generated, time-sorted churn schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnSchedule {
    /// The events, sorted by instant (ties keep generation order — the
    /// engine applies same-instant events in list order).
    pub events: Vec<TopologyEvent>,
}

impl ChurnSchedule {
    /// Generates the deterministic schedule for `topo` under `cfg`,
    /// drawing every random choice from `rng`. The same (topology, config,
    /// rng state) always yields the same schedule.
    pub fn generate(topo: &Topology, cfg: &DynamicsConfig, rng: &mut DetRng) -> Result<Self> {
        cfg.validate()?;
        let mut events: Vec<TopologyEvent> = Vec::new();
        let horizon = cfg.horizon_secs;
        let n_channels = topo.channel_count();
        let n_nodes = topo.node_count();
        if n_channels == 0 {
            return Ok(ChurnSchedule { events });
        }
        let at = |secs: f64| SimTime::from_secs_f64(secs);

        // Mid-run spawns: a deterministic sample of channels starts
        // closed and opens at a uniform instant.
        let mut spawn_rng = rng.fork("spawn");
        let spawn_count = ((n_channels as f64) * cfg.spawn_fraction).floor() as usize;
        let flap_count = cfg
            .flap_channels
            .min(n_channels.saturating_sub(spawn_count));
        let mut ids: Vec<usize> = (0..n_channels).collect();
        spawn_rng.shuffle(&mut ids);
        // Spawn and flap channels are *owned* by their trace: the Poisson
        // close/resize streams and the node cycles skip them, so a spawn
        // channel can never be opened before its spawn instant (e.g. by a
        // NodeJoin reopening every closed incident channel) and a flap
        // square wave is never perturbed mid-cycle.
        let mut reserved = vec![false; n_channels];
        for &ci in ids.iter().take(spawn_count) {
            reserved[ci] = true;
        }
        for &ci in ids.iter().rev().take(flap_count) {
            reserved[ci] = true;
        }
        let node_reserved: Vec<bool> = (0..n_nodes)
            .map(|u| {
                topo.neighbors(NodeId::from_index(u))
                    .iter()
                    .any(|a| reserved[a.channel.index()])
            })
            .collect();
        for &ci in ids.iter().take(spawn_count) {
            let channel = ChannelId::from_index(ci);
            events.push(TopologyEvent {
                at: SimTime::ZERO,
                change: TopologyChange::ChannelClose { channel },
            });
            events.push(TopologyEvent {
                at: at(spawn_rng.uniform() * horizon),
                change: TopologyChange::ChannelOpen { channel },
            });
        }

        // Poisson channel closes with exponential reopens.
        let mut close_rng = rng.fork("close");
        if cfg.close_rate_per_sec > 0.0 {
            let gap = Exponential::new(cfg.close_rate_per_sec);
            let mut t = gap.sample(&mut close_rng);
            while t < horizon {
                let ci = close_rng.index(n_channels);
                if reserved[ci] {
                    // Owned by the spawn/flap traces: thin the process.
                    t += gap.sample(&mut close_rng);
                    continue;
                }
                let channel = ChannelId::from_index(ci);
                events.push(TopologyEvent {
                    at: at(t),
                    change: TopologyChange::ChannelClose { channel },
                });
                if let Some(mean) = cfg.reopen_mean_secs {
                    let dt = Exponential::with_mean(mean).sample(&mut close_rng);
                    if t + dt < horizon {
                        events.push(TopologyEvent {
                            at: at(t + dt),
                            change: TopologyChange::ChannelOpen { channel },
                        });
                    }
                }
                t += gap.sample(&mut close_rng);
            }
        }

        // Poisson capacity resizes, log-uniform factors against the
        // channel's original capacity.
        let mut resize_rng = rng.fork("resize");
        if cfg.resize_rate_per_sec > 0.0 {
            let gap = Exponential::new(cfg.resize_rate_per_sec);
            let [lo, hi] = cfg.resize_factor_range;
            let (ln_lo, ln_hi) = (lo.ln(), hi.ln());
            let mut t = gap.sample(&mut resize_rng);
            while t < horizon {
                let ci = resize_rng.index(n_channels);
                if reserved[ci] {
                    t += gap.sample(&mut resize_rng);
                    continue;
                }
                let channel = ChannelId::from_index(ci);
                let factor = (ln_lo + resize_rng.uniform() * (ln_hi - ln_lo)).exp();
                let base = topo.channel(channel).capacity;
                let new_capacity = base.mul_f64(factor).max(Amount::DROP);
                events.push(TopologyEvent {
                    at: at(t),
                    change: TopologyChange::ChannelResize {
                        channel,
                        new_capacity,
                    },
                });
                t += gap.sample(&mut resize_rng);
            }
        }

        // Poisson node leave/join cycles.
        let mut node_rng = rng.fork("node");
        if cfg.node_leave_rate_per_sec > 0.0 && n_nodes > 0 {
            let gap = Exponential::new(cfg.node_leave_rate_per_sec);
            let mut t = gap.sample(&mut node_rng);
            while t < horizon {
                let ni = node_rng.index(n_nodes);
                if node_reserved[ni] {
                    // An incident channel is owned by the spawn/flap
                    // traces: a join here could open a spawn channel
                    // before its spawn instant. Thin the process.
                    t += gap.sample(&mut node_rng);
                    continue;
                }
                let node = NodeId::from_index(ni);
                events.push(TopologyEvent {
                    at: at(t),
                    change: TopologyChange::NodeLeave { node },
                });
                if let Some(mean) = cfg.reopen_mean_secs {
                    let dt = Exponential::with_mean(mean).sample(&mut node_rng);
                    if t + dt < horizon {
                        events.push(TopologyEvent {
                            at: at(t + dt),
                            change: TopologyChange::NodeJoin { node },
                        });
                    }
                }
                t += gap.sample(&mut node_rng);
            }
        }

        // Flap traces: square-wave closed/open toggling on the reserved
        // channels disjoint from the spawn set.
        let mut flap_rng = rng.fork("flap");
        for &ci in ids.iter().rev().take(flap_count) {
            let channel = ChannelId::from_index(ci);
            let period = cfg.flap_period_secs * (0.5 + flap_rng.uniform());
            let mut t = flap_rng.uniform() * period;
            let mut closing = true;
            while t < horizon {
                events.push(TopologyEvent {
                    at: at(t),
                    change: if closing {
                        TopologyChange::ChannelClose { channel }
                    } else {
                        TopologyChange::ChannelOpen { channel }
                    },
                });
                closing = !closing;
                t += period / 2.0;
            }
        }

        // Stable by instant: same-instant events keep generation order
        // (spawns, closes, resizes, node cycles, flaps).
        events.sort_by_key(|e| e.at);
        Ok(ChurnSchedule { events })
    }

    /// Number of events at `t = 0` (the initial-state slice).
    pub fn initial_events(&self) -> usize {
        self.events.iter().filter(|e| e.at == SimTime::ZERO).count()
    }

    /// Number of mid-run events (`t > 0`).
    pub fn midrun_events(&self) -> usize {
        self.events.len() - self.initial_events()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spider_topology::gen;

    fn topo() -> Topology {
        gen::isp_topology(Amount::from_xrp(100))
    }

    #[test]
    fn generation_is_deterministic() {
        let t = topo();
        let cfg = DynamicsConfig::default();
        let a = ChurnSchedule::generate(&t, &cfg, &mut DetRng::new(7)).unwrap();
        let b = ChurnSchedule::generate(&t, &cfg, &mut DetRng::new(7)).unwrap();
        assert_eq!(a, b);
        let c = ChurnSchedule::generate(&t, &cfg, &mut DetRng::new(8)).unwrap();
        assert_ne!(a, c, "different seeds must differ");
        assert!(!a.events.is_empty());
        // Sorted by instant.
        for w in a.events.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        // Every event stays within the horizon and the id spaces.
        for e in &a.events {
            assert!(e.at.as_secs_f64() < cfg.horizon_secs);
            match e.change {
                TopologyChange::ChannelClose { channel }
                | TopologyChange::ChannelOpen { channel }
                | TopologyChange::ChannelResize { channel, .. } => {
                    assert!(channel.index() < t.channel_count())
                }
                TopologyChange::NodeLeave { node } | TopologyChange::NodeJoin { node } => {
                    assert!(node.index() < t.node_count())
                }
            }
        }
    }

    #[test]
    fn spawned_channels_close_at_zero_then_open() {
        let t = topo();
        let cfg = DynamicsConfig {
            spawn_fraction: 0.2,
            close_rate_per_sec: 0.0,
            resize_rate_per_sec: 0.0,
            node_leave_rate_per_sec: 0.0,
            flap_channels: 0,
            ..DynamicsConfig::default()
        };
        let s = ChurnSchedule::generate(&t, &cfg, &mut DetRng::new(1)).unwrap();
        let spawns = ((t.channel_count() as f64) * 0.2).floor() as usize;
        assert_eq!(s.initial_events(), spawns);
        assert_eq!(s.midrun_events(), spawns);
        for e in &s.events {
            if e.at == SimTime::ZERO {
                assert!(matches!(e.change, TopologyChange::ChannelClose { .. }));
            } else {
                assert!(matches!(e.change, TopologyChange::ChannelOpen { .. }));
            }
        }
    }

    #[test]
    fn intensity_scales_event_count() {
        let t = topo();
        let base = DynamicsConfig::default();
        let gen_n = |i: f64| {
            ChurnSchedule::generate(&t, &base.scaled(i), &mut DetRng::new(3))
                .unwrap()
                .events
                .len()
        };
        assert_eq!(gen_n(0.0), 0, "zero intensity is a quiet network");
        assert!(gen_n(2.0) > gen_n(0.5));
    }

    #[test]
    fn validation_rejects_nonsense() {
        let t = topo();
        for cfg in [
            DynamicsConfig {
                close_rate_per_sec: -1.0,
                ..DynamicsConfig::default()
            },
            DynamicsConfig {
                resize_factor_range: [0.0, 2.0],
                ..DynamicsConfig::default()
            },
            DynamicsConfig {
                spawn_fraction: 1.5,
                ..DynamicsConfig::default()
            },
            DynamicsConfig {
                horizon_secs: 0.0,
                ..DynamicsConfig::default()
            },
            DynamicsConfig {
                reopen_mean_secs: Some(0.0),
                ..DynamicsConfig::default()
            },
        ] {
            assert!(ChurnSchedule::generate(&t, &cfg, &mut DetRng::new(0)).is_err());
        }
    }

    /// The shim round-trip for the new field shapes the dynamics types
    /// introduced: `[f64; 2]` (needed a fixed-size-array impl in the
    /// vendored serde) and `Option<f64>` inside a config struct.
    #[test]
    fn config_and_schedule_serde_round_trip() {
        let cfg = DynamicsConfig {
            reopen_mean_secs: None,
            resize_factor_range: [0.25, 4.0],
            ..DynamicsConfig::default()
        };
        let json = serde_json::to_string(&cfg).unwrap();
        let back: DynamicsConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
        let t = topo();
        let s =
            ChurnSchedule::generate(&t, &DynamicsConfig::default(), &mut DetRng::new(5)).unwrap();
        let json = serde_json::to_string(&s).unwrap();
        let back: ChurnSchedule = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
