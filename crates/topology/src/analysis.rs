//! Graph analysis utilities: components, degree statistics, diameter and
//! the pruning operations the paper applies to the Ripple snapshot.

use crate::graph::{Topology, TopologyBuilder};
use spider_types::NodeId;
use std::collections::VecDeque;

/// Connected components as lists of node ids (each sorted ascending);
/// components are ordered by their smallest member.
pub fn connected_components(t: &Topology) -> Vec<Vec<NodeId>> {
    let mut comp_of = vec![usize::MAX; t.node_count()];
    let mut comps: Vec<Vec<NodeId>> = Vec::new();
    for start in t.nodes() {
        if comp_of[start.index()] != usize::MAX {
            continue;
        }
        let cid = comps.len();
        let mut members = vec![start];
        comp_of[start.index()] = cid;
        let mut queue = VecDeque::from([start]);
        while let Some(u) = queue.pop_front() {
            for adj in t.neighbors(u) {
                if comp_of[adj.neighbor.index()] == usize::MAX {
                    comp_of[adj.neighbor.index()] = cid;
                    members.push(adj.neighbor);
                    queue.push_back(adj.neighbor);
                }
            }
        }
        members.sort_unstable();
        comps.push(members);
    }
    comps
}

/// Extracts the induced subgraph on `keep` (node ids are re-densified in
/// the order given). Channels with both endpoints in `keep` survive.
pub fn induced_subgraph(t: &Topology, keep: &[NodeId]) -> Topology {
    let mut new_id = vec![None; t.node_count()];
    for (fresh, old) in keep.iter().enumerate() {
        new_id[old.index()] = Some(NodeId::from_index(fresh));
    }
    let mut b = TopologyBuilder::new(keep.len());
    for (_, c) in t.channels() {
        if let (Some(nu), Some(nv)) = (new_id[c.u.index()], new_id[c.v.index()]) {
            b.channel(nu, nv, c.capacity).expect("induced edge");
        }
    }
    b.build()
}

/// The largest connected component as a re-densified topology.
/// (Ties broken toward the component with the smallest member id.)
pub fn largest_component(t: &Topology) -> Topology {
    let comps = connected_components(t);
    match comps.iter().max_by_key(|c| c.len()) {
        Some(best) => induced_subgraph(t, best),
        None => t.clone(),
    }
}

/// Iteratively removes nodes of degree `<= k` until none remain, then
/// returns the re-densified remainder. With `k = 1` this is exactly the
/// paper's preprocessing: "we pruned the dataset to remove the degree-1
/// nodes (which don't make routing decisions)".
pub fn prune_low_degree(t: &Topology, k: usize) -> Topology {
    let mut alive = vec![true; t.node_count()];
    let mut degree: Vec<usize> = t.nodes().map(|n| t.degree(n)).collect();
    let mut queue: VecDeque<NodeId> = t.nodes().filter(|n| degree[n.index()] <= k).collect();
    while let Some(u) = queue.pop_front() {
        if !alive[u.index()] {
            continue;
        }
        alive[u.index()] = false;
        for adj in t.neighbors(u) {
            let vi = adj.neighbor.index();
            if alive[vi] {
                degree[vi] -= 1;
                if degree[vi] <= k {
                    queue.push_back(adj.neighbor);
                }
            }
        }
    }
    let keep: Vec<NodeId> = t.nodes().filter(|n| alive[n.index()]).collect();
    induced_subgraph(t, &keep)
}

/// Degree of every node.
pub fn degree_sequence(t: &Topology) -> Vec<usize> {
    t.nodes().map(|n| t.degree(n)).collect()
}

/// Mean node degree (0 for the empty graph).
pub fn average_degree(t: &Topology) -> f64 {
    if t.node_count() == 0 {
        0.0
    } else {
        2.0 * t.channel_count() as f64 / t.node_count() as f64
    }
}

/// Graph diameter in hops; `None` when the graph is disconnected or empty.
///
/// O(V·E) — intended for the evaluation topologies, not for million-node
/// graphs.
pub fn diameter(t: &Topology) -> Option<u32> {
    if t.node_count() == 0 {
        return None;
    }
    let mut best = 0;
    for src in t.nodes() {
        for d in t.bfs_distances(src) {
            best = best.max(d?);
        }
    }
    Some(best)
}

/// Global clustering coefficient (3 × triangles / connected triples);
/// 0 when the graph has no connected triple.
pub fn clustering_coefficient(t: &Topology) -> f64 {
    let mut triangles = 0usize;
    let mut triples = 0usize;
    for u in t.nodes() {
        let neigh: Vec<NodeId> = t.neighbors(u).iter().map(|a| a.neighbor).collect();
        let d = neigh.len();
        triples += d.saturating_sub(1) * d / 2;
        for i in 0..neigh.len() {
            for j in (i + 1)..neigh.len() {
                if t.channel_between(neigh[i], neigh[j]).is_some() {
                    triangles += 1;
                }
            }
        }
    }
    // Each triangle is counted once per corner = 3 times.
    if triples == 0 {
        0.0
    } else {
        triangles as f64 / triples as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use spider_types::Amount;

    const CAP: Amount = Amount::from_xrp(1);

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn components_of_disjoint_lines() {
        // 0-1-2  and  3-4, node 5 isolated.
        let mut b = Topology::builder(6);
        b.channel(n(0), n(1), CAP).unwrap();
        b.channel(n(1), n(2), CAP).unwrap();
        b.channel(n(3), n(4), CAP).unwrap();
        let t = b.build();
        let comps = connected_components(&t);
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0], vec![n(0), n(1), n(2)]);
        assert_eq!(comps[1], vec![n(3), n(4)]);
        assert_eq!(comps[2], vec![n(5)]);
    }

    #[test]
    fn largest_component_extraction() {
        let mut b = Topology::builder(6);
        b.channel(n(0), n(1), CAP).unwrap();
        b.channel(n(1), n(2), CAP).unwrap();
        b.channel(n(3), n(4), CAP).unwrap();
        let t = b.build();
        let lc = largest_component(&t);
        assert_eq!(lc.node_count(), 3);
        assert_eq!(lc.channel_count(), 2);
        assert!(lc.is_connected());
    }

    #[test]
    fn induced_subgraph_remaps_ids() {
        let t = gen::cycle(5, CAP);
        let sub = induced_subgraph(&t, &[n(1), n(2), n(4)]);
        assert_eq!(sub.node_count(), 3);
        // Only edge 1-2 survives (4 is adjacent to 3 and 0, both dropped).
        assert_eq!(sub.channel_count(), 1);
        assert!(sub.channel_between(n(0), n(1)).is_some());
    }

    #[test]
    fn prune_degree_one_removes_leaves_recursively() {
        // A line 0-1-2-3-4: pruning degree-1 removes everything (cascade).
        let t = gen::line(5, CAP);
        let pruned = prune_low_degree(&t, 1);
        assert_eq!(pruned.node_count(), 0);
        // A cycle survives pruning intact.
        let c = gen::cycle(5, CAP);
        let pruned = prune_low_degree(&c, 1);
        assert_eq!(pruned.node_count(), 5);
        assert_eq!(pruned.channel_count(), 5);
    }

    #[test]
    fn prune_keeps_core_drops_pendant_tree() {
        // A triangle with a 2-node tail: tail gets pruned, triangle stays.
        let mut b = Topology::builder(5);
        b.channel(n(0), n(1), CAP).unwrap();
        b.channel(n(1), n(2), CAP).unwrap();
        b.channel(n(2), n(0), CAP).unwrap();
        b.channel(n(2), n(3), CAP).unwrap();
        b.channel(n(3), n(4), CAP).unwrap();
        let pruned = prune_low_degree(&b.build(), 1);
        assert_eq!(pruned.node_count(), 3);
        assert_eq!(pruned.channel_count(), 3);
    }

    #[test]
    fn degree_stats() {
        let t = gen::star(5, CAP);
        assert_eq!(degree_sequence(&t), vec![4, 1, 1, 1, 1]);
        assert!((average_degree(&t) - 2.0 * 4.0 / 5.0).abs() < 1e-12);
        assert_eq!(average_degree(&Topology::builder(0).build()), 0.0);
    }

    #[test]
    fn diameter_values() {
        assert_eq!(diameter(&gen::line(5, CAP)), Some(4));
        assert_eq!(diameter(&gen::cycle(6, CAP)), Some(3));
        assert_eq!(diameter(&gen::complete(4, CAP)), Some(1));
        let mut b = Topology::builder(3);
        b.channel(n(0), n(1), CAP).unwrap();
        assert_eq!(diameter(&b.build()), None); // disconnected
    }

    #[test]
    fn clustering_values() {
        assert_eq!(clustering_coefficient(&gen::complete(4, CAP)), 1.0);
        assert_eq!(clustering_coefficient(&gen::star(5, CAP)), 0.0);
        let t = gen::line(3, CAP);
        assert_eq!(clustering_coefficient(&t), 0.0);
    }

    #[test]
    fn isp_diameter_is_small() {
        let t = gen::isp_topology(CAP);
        let d = diameter(&t).unwrap();
        assert!(d <= 4, "ISP diameter {d}");
    }
}
