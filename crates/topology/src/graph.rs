//! The payment-channel-network graph.

use serde::{Deserialize, Serialize};
use spider_types::{Amount, ChannelId, Direction, NodeId, Result, SpiderError};
use std::collections::VecDeque;

/// An undirected payment channel with its total escrowed capacity.
///
/// Endpoints are stored in canonical order (`u < v`); [`Direction::Forward`]
/// always means `u → v`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Channel {
    /// Canonical first endpoint (`u < v`).
    pub u: NodeId,
    /// Canonical second endpoint.
    pub v: NodeId,
    /// Total funds escrowed in the channel (both directions combined).
    pub capacity: Amount,
}

impl Channel {
    /// The endpoint opposite to `node`. Panics if `node` is not an endpoint.
    #[inline]
    pub fn peer(&self, node: NodeId) -> NodeId {
        if node == self.u {
            self.v
        } else if node == self.v {
            self.u
        } else {
            panic!("{node} is not an endpoint of this channel");
        }
    }

    /// The direction of travel when leaving `node` through this channel.
    /// Panics if `node` is not an endpoint.
    #[inline]
    pub fn direction_from(&self, node: NodeId) -> Direction {
        if node == self.u {
            Direction::Forward
        } else if node == self.v {
            Direction::Backward
        } else {
            panic!("{node} is not an endpoint of this channel");
        }
    }

    /// The node from which `dir` departs.
    #[inline]
    pub fn source(&self, dir: Direction) -> NodeId {
        match dir {
            Direction::Forward => self.u,
            Direction::Backward => self.v,
        }
    }

    /// The node at which `dir` arrives.
    #[inline]
    pub fn target(&self, dir: Direction) -> NodeId {
        match dir {
            Direction::Forward => self.v,
            Direction::Backward => self.u,
        }
    }
}

/// One entry of a node's adjacency list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Adjacency {
    /// The neighboring node.
    pub neighbor: NodeId,
    /// The channel connecting to it.
    pub channel: ChannelId,
}

/// An immutable payment channel network topology.
///
/// Construct one with [`TopologyBuilder`] or a generator from
/// [`crate::gen`]. Node ids are dense `0..node_count()`, channel ids dense
/// `0..channel_count()`. Adjacency lists are sorted by neighbor id, so all
/// traversals are deterministic.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    node_count: usize,
    channels: Vec<Channel>,
    adj: Vec<Vec<Adjacency>>,
}

impl Topology {
    /// Starts building a topology with `nodes` nodes.
    pub fn builder(nodes: usize) -> TopologyBuilder {
        TopologyBuilder::new(nodes)
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of channels (undirected edges).
    #[inline]
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count).map(NodeId::from_index)
    }

    /// Iterator over `(id, channel)` pairs.
    pub fn channels(&self) -> impl Iterator<Item = (ChannelId, &Channel)> + '_ {
        self.channels
            .iter()
            .enumerate()
            .map(|(i, c)| (ChannelId::from_index(i), c))
    }

    /// The channel with the given id.
    #[inline]
    pub fn channel(&self, id: ChannelId) -> &Channel {
        &self.channels[id.index()]
    }

    /// Checked channel lookup.
    pub fn try_channel(&self, id: ChannelId) -> Result<&Channel> {
        self.channels
            .get(id.index())
            .ok_or(SpiderError::UnknownChannel(id))
    }

    /// Adjacency list of `node`, sorted by neighbor id.
    #[inline]
    pub fn neighbors(&self, node: NodeId) -> &[Adjacency] {
        &self.adj[node.index()]
    }

    /// Degree of `node`.
    #[inline]
    pub fn degree(&self, node: NodeId) -> usize {
        self.adj[node.index()].len()
    }

    /// The channel between `a` and `b`, if one exists.
    pub fn channel_between(&self, a: NodeId, b: NodeId) -> Option<ChannelId> {
        let (probe, other) = if self.degree(a) <= self.degree(b) {
            (a, b)
        } else {
            (b, a)
        };
        self.adj[probe.index()]
            .binary_search_by_key(&other, |adj| adj.neighbor)
            .ok()
            .map(|i| self.adj[probe.index()][i].channel)
    }

    /// Validates that `node` exists.
    pub fn check_node(&self, node: NodeId) -> Result<()> {
        if node.index() < self.node_count {
            Ok(())
        } else {
            Err(SpiderError::UnknownNode(node))
        }
    }

    /// Returns a copy with every channel capacity set to `capacity`
    /// (the paper's experiments use uniform per-link capacity).
    pub fn with_uniform_capacity(&self, capacity: Amount) -> Topology {
        let mut t = self.clone();
        for c in &mut t.channels {
            c.capacity = capacity;
        }
        t
    }

    /// Returns a copy with per-channel capacities given by `f`.
    pub fn with_capacities(&self, mut f: impl FnMut(ChannelId, &Channel) -> Amount) -> Topology {
        let mut t = self.clone();
        for (i, c) in t.channels.iter_mut().enumerate() {
            c.capacity = f(ChannelId::from_index(i), c);
        }
        t
    }

    /// Total capacity escrowed across the whole network — the "capital
    /// locked in" that the paper's efficiency argument is about.
    pub fn total_capacity(&self) -> Amount {
        self.channels.iter().map(|c| c.capacity).sum()
    }

    /// Breadth-first hop distances from `src`; `None` for unreachable nodes.
    pub fn bfs_distances(&self, src: NodeId) -> Vec<Option<u32>> {
        let mut dist = vec![None; self.node_count];
        dist[src.index()] = Some(0);
        let mut queue = VecDeque::from([src]);
        while let Some(u) = queue.pop_front() {
            let du = dist[u.index()].expect("visited");
            for adj in self.neighbors(u) {
                if dist[adj.neighbor.index()].is_none() {
                    dist[adj.neighbor.index()] = Some(du + 1);
                    queue.push_back(adj.neighbor);
                }
            }
        }
        dist
    }

    /// Full BFS parent tree from `src`: entry `i` is the predecessor of
    /// node `i` on its shortest path from `src` (`u32::MAX` = unreached;
    /// the source points at itself). Ties are broken toward the smallest
    /// neighbor id, deterministically. One tree serves *every*
    /// destination, which is what lets the shortest-path routing cache
    /// pay for a single traversal per sender.
    pub fn bfs_parents(&self, src: NodeId) -> Vec<u32> {
        let mut parent = vec![u32::MAX; self.node_count];
        parent[src.index()] = src.0;
        let mut queue = VecDeque::from([src]);
        while let Some(u) = queue.pop_front() {
            for adj in self.neighbors(u) {
                if parent[adj.neighbor.index()] == u32::MAX {
                    parent[adj.neighbor.index()] = u.0;
                    queue.push_back(adj.neighbor);
                }
            }
        }
        parent
    }

    /// Reads the `src → dst` path out of a tree from
    /// [`Topology::bfs_parents`]; `None` when `dst` is unreached, or when
    /// `src` is not on `dst`'s ancestor chain (a tree rooted elsewhere).
    pub fn path_from_parents(parents: &[u32], src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
        if parents[dst.index()] == u32::MAX {
            return None;
        }
        let mut path = vec![dst];
        let mut cur = dst;
        while cur != src {
            let p = NodeId(parents[cur.index()]);
            if p == cur {
                // Reached the tree's root without meeting `src`.
                return None;
            }
            cur = p;
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }

    /// One shortest path (by hop count) from `src` to `dst`, as the list of
    /// visited nodes including both endpoints. Ties are broken toward the
    /// smallest neighbor id, deterministically. Derived from
    /// [`Topology::bfs_parents`], so per-pair and per-source-tree callers
    /// agree by construction.
    pub fn shortest_path(&self, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
        if src == dst {
            return Some(vec![src]);
        }
        Self::path_from_parents(&self.bfs_parents(src), src, dst)
    }

    /// Converts a node path (as returned by [`Topology::shortest_path`])
    /// into the channel hops traversed, with the direction of travel.
    pub fn path_channels(&self, path: &[NodeId]) -> Result<Vec<(ChannelId, Direction)>> {
        let mut hops = Vec::with_capacity(path.len().saturating_sub(1));
        for w in path.windows(2) {
            let (a, b) = (w[0], w[1]);
            let id = self
                .channel_between(a, b)
                .ok_or(SpiderError::NotAdjacent(a, b))?;
            hops.push((id, self.channel(id).direction_from(a)));
        }
        Ok(hops)
    }

    /// True iff every node can reach every other node.
    pub fn is_connected(&self) -> bool {
        if self.node_count == 0 {
            return true;
        }
        self.bfs_distances(NodeId(0)).iter().all(Option::is_some)
    }
}

/// Incremental constructor for [`Topology`].
///
/// Rejects self-loops and duplicate channels; parallel channels between the
/// same pair are modeled in the paper as one channel with the combined
/// capacity, so the builder *merges* capacity when the same pair is added
/// twice via [`TopologyBuilder::merge_channel`].
#[derive(Debug, Clone)]
pub struct TopologyBuilder {
    node_count: usize,
    channels: Vec<Channel>,
}

impl TopologyBuilder {
    /// Creates a builder for a graph with `nodes` nodes and no channels.
    pub fn new(nodes: usize) -> Self {
        TopologyBuilder {
            node_count: nodes,
            channels: Vec::new(),
        }
    }

    fn canonical(&self, a: NodeId, b: NodeId) -> Result<(NodeId, NodeId)> {
        if a.index() >= self.node_count {
            return Err(SpiderError::UnknownNode(a));
        }
        if b.index() >= self.node_count {
            return Err(SpiderError::UnknownNode(b));
        }
        if a == b {
            return Err(SpiderError::InvalidConfig(format!("self-loop at {a}")));
        }
        Ok(if a < b { (a, b) } else { (b, a) })
    }

    /// Adds a channel between `a` and `b`. Errors on self-loops, unknown
    /// nodes, or duplicate pairs.
    pub fn channel(&mut self, a: NodeId, b: NodeId, capacity: Amount) -> Result<&mut Self> {
        let (u, v) = self.canonical(a, b)?;
        if self.find(u, v).is_some() {
            return Err(SpiderError::InvalidConfig(format!(
                "duplicate channel {u}-{v}"
            )));
        }
        self.channels.push(Channel { u, v, capacity });
        Ok(self)
    }

    /// Adds a channel, or adds `capacity` to the existing channel between
    /// the same pair (used when collapsing trace multigraphs).
    pub fn merge_channel(&mut self, a: NodeId, b: NodeId, capacity: Amount) -> Result<&mut Self> {
        let (u, v) = self.canonical(a, b)?;
        if let Some(i) = self.find(u, v) {
            self.channels[i].capacity += capacity;
        } else {
            self.channels.push(Channel { u, v, capacity });
        }
        Ok(self)
    }

    fn find(&self, u: NodeId, v: NodeId) -> Option<usize> {
        self.channels.iter().position(|c| c.u == u && c.v == v)
    }

    /// True if a channel between `a` and `b` has been added.
    pub fn has_channel(&self, a: NodeId, b: NodeId) -> bool {
        match self.canonical(a, b) {
            Ok((u, v)) => self.find(u, v).is_some(),
            Err(_) => false,
        }
    }

    /// Number of channels added so far.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Finalizes the topology (sorts channels canonically and builds
    /// adjacency lists).
    pub fn build(mut self) -> Topology {
        // Sort channels by (u, v) so ids are independent of insertion order.
        self.channels.sort_by_key(|c| (c.u, c.v));
        let mut adj: Vec<Vec<Adjacency>> = vec![Vec::new(); self.node_count];
        for (i, c) in self.channels.iter().enumerate() {
            let id = ChannelId::from_index(i);
            adj[c.u.index()].push(Adjacency {
                neighbor: c.v,
                channel: id,
            });
            adj[c.v.index()].push(Adjacency {
                neighbor: c.u,
                channel: id,
            });
        }
        for list in &mut adj {
            list.sort_by_key(|a| a.neighbor);
        }
        Topology {
            node_count: self.node_count,
            channels: self.channels,
            adj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn small() -> Topology {
        // 0 - 1 - 2 - 3, plus chord 1 - 3; node 4 isolated.
        let mut b = Topology::builder(5);
        b.channel(n(0), n(1), Amount::from_xrp(10)).unwrap();
        b.channel(n(2), n(1), Amount::from_xrp(20)).unwrap();
        b.channel(n(2), n(3), Amount::from_xrp(30)).unwrap();
        b.channel(n(3), n(1), Amount::from_xrp(40)).unwrap();
        b.build()
    }

    #[test]
    fn counts_and_lookup() {
        let t = small();
        assert_eq!(t.node_count(), 5);
        assert_eq!(t.channel_count(), 4);
        let id = t.channel_between(n(1), n(2)).unwrap();
        let c = t.channel(id);
        assert_eq!((c.u, c.v), (n(1), n(2))); // canonicalized
        assert_eq!(c.capacity, Amount::from_xrp(20));
        assert_eq!(t.channel_between(n(0), n(3)), None);
        assert_eq!(t.channel_between(n(2), n(1)), t.channel_between(n(1), n(2)));
    }

    #[test]
    fn channel_ids_are_insertion_order_independent() {
        let mut b1 = Topology::builder(3);
        b1.channel(n(0), n(1), Amount::from_xrp(1)).unwrap();
        b1.channel(n(1), n(2), Amount::from_xrp(2)).unwrap();
        let mut b2 = Topology::builder(3);
        b2.channel(n(2), n(1), Amount::from_xrp(2)).unwrap();
        b2.channel(n(1), n(0), Amount::from_xrp(1)).unwrap();
        assert_eq!(b1.build(), b2.build());
    }

    #[test]
    fn adjacency_is_sorted() {
        let t = small();
        let neigh: Vec<NodeId> = t.neighbors(n(1)).iter().map(|a| a.neighbor).collect();
        assert_eq!(neigh, vec![n(0), n(2), n(3)]);
        assert_eq!(t.degree(n(1)), 3);
        assert_eq!(t.degree(n(4)), 0);
    }

    #[test]
    fn builder_rejects_bad_input() {
        let mut b = Topology::builder(2);
        assert!(matches!(
            b.channel(n(0), n(0), Amount::ZERO),
            Err(SpiderError::InvalidConfig(_))
        ));
        assert!(matches!(
            b.channel(n(0), n(5), Amount::ZERO),
            Err(SpiderError::UnknownNode(_))
        ));
        b.channel(n(0), n(1), Amount::from_xrp(1)).unwrap();
        assert!(matches!(
            b.channel(n(1), n(0), Amount::ZERO),
            Err(SpiderError::InvalidConfig(_))
        ));
    }

    #[test]
    fn merge_channel_accumulates() {
        let mut b = Topology::builder(2);
        b.merge_channel(n(0), n(1), Amount::from_xrp(5)).unwrap();
        b.merge_channel(n(1), n(0), Amount::from_xrp(7)).unwrap();
        let t = b.build();
        assert_eq!(t.channel_count(), 1);
        assert_eq!(t.channel(ChannelId(0)).capacity, Amount::from_xrp(12));
    }

    #[test]
    fn channel_helpers() {
        let t = small();
        let id = t.channel_between(n(1), n(3)).unwrap();
        let c = t.channel(id);
        assert_eq!(c.peer(n(1)), n(3));
        assert_eq!(c.peer(n(3)), n(1));
        assert_eq!(c.direction_from(n(1)), Direction::Forward);
        assert_eq!(c.direction_from(n(3)), Direction::Backward);
        assert_eq!(c.source(Direction::Forward), n(1));
        assert_eq!(c.target(Direction::Forward), n(3));
        assert_eq!(c.source(Direction::Backward), n(3));
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn peer_panics_for_non_endpoint() {
        let t = small();
        let id = t.channel_between(n(0), n(1)).unwrap();
        t.channel(id).peer(n(2));
    }

    #[test]
    fn bfs_and_shortest_paths() {
        let t = small();
        let d = t.bfs_distances(n(0));
        assert_eq!(d[0], Some(0));
        assert_eq!(d[1], Some(1));
        assert_eq!(d[2], Some(2));
        assert_eq!(d[3], Some(2));
        assert_eq!(d[4], None);
        assert_eq!(t.shortest_path(n(0), n(3)).unwrap(), vec![n(0), n(1), n(3)]);
        assert_eq!(t.shortest_path(n(0), n(4)), None);
        assert_eq!(t.shortest_path(n(2), n(2)).unwrap(), vec![n(2)]);
    }

    #[test]
    fn parent_tree_serves_every_destination() {
        let t = small();
        let tree = t.bfs_parents(n(0));
        for dst in [1u32, 2, 3] {
            assert_eq!(
                Topology::path_from_parents(&tree, n(0), n(dst)),
                t.shortest_path(n(0), n(dst)),
                "dst {dst}"
            );
        }
        // Unreached destination.
        assert_eq!(Topology::path_from_parents(&tree, n(0), n(4)), None);
        // Misuse: `src` not on `dst`'s ancestor chain in a tree rooted
        // elsewhere must return None, not loop.
        assert_eq!(Topology::path_from_parents(&tree, n(2), n(3)), None);
    }

    #[test]
    fn shortest_path_tie_break_is_smallest_id() {
        // 0-1, 0-2, 1-3, 2-3: two paths 0→3; BFS must pick via node 1.
        let mut b = Topology::builder(4);
        b.channel(n(0), n(1), Amount::ZERO).unwrap();
        b.channel(n(0), n(2), Amount::ZERO).unwrap();
        b.channel(n(1), n(3), Amount::ZERO).unwrap();
        b.channel(n(2), n(3), Amount::ZERO).unwrap();
        let t = b.build();
        assert_eq!(t.shortest_path(n(0), n(3)).unwrap(), vec![n(0), n(1), n(3)]);
    }

    #[test]
    fn path_channels_directions() {
        let t = small();
        let hops = t.path_channels(&[n(0), n(1), n(3)]).unwrap();
        assert_eq!(hops.len(), 2);
        let (c0, d0) = hops[0];
        assert_eq!(t.channel(c0).source(d0), n(0));
        let (c1, d1) = hops[1];
        assert_eq!(t.channel(c1).source(d1), n(1));
        assert_eq!(t.channel(c1).target(d1), n(3));
        assert!(t.path_channels(&[n(0), n(3)]).is_err());
    }

    #[test]
    fn connectivity() {
        assert!(!small().is_connected()); // node 4 isolated
        let mut b = Topology::builder(2);
        b.channel(n(0), n(1), Amount::ZERO).unwrap();
        assert!(b.build().is_connected());
        assert!(Topology::builder(0).build().is_connected());
    }

    #[test]
    fn capacity_rewrites() {
        let t = small().with_uniform_capacity(Amount::from_xrp(7));
        assert!(t.channels().all(|(_, c)| c.capacity == Amount::from_xrp(7)));
        assert_eq!(t.total_capacity(), Amount::from_xrp(28));
        let t2 = t.with_capacities(|id, _| Amount::from_xrp(id.0 as u64));
        assert_eq!(t2.total_capacity(), Amount::from_xrp(1 + 2 + 3));
    }
}
