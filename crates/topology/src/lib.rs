//! # spider-topology
//!
//! Network topologies for payment channel networks: the graph data
//! structure, deterministic and random topology generators (including the
//! paper's ISP-like and Ripple-like graphs), simple graph analysis, and a
//! plain-text interchange format.
//!
//! A [`Topology`] is an undirected simple graph whose edges are
//! bidirectional payment channels. Each channel has a *total capacity*
//! (the escrowed funds of both endpoints combined); how that capacity is
//! split between the two directions at simulation start is decided by the
//! simulator (the paper splits it equally, §6.2).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod gen;
pub mod graph;
pub mod io;

pub use graph::{Adjacency, Channel, Topology, TopologyBuilder};
