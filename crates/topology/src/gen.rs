//! Topology generators.
//!
//! Deterministic families (line, cycle, star, complete, grid, tree), random
//! families (Erdős–Rényi, Watts–Strogatz small-world, Barabási–Albert
//! scale-free), and the two evaluation topologies of the paper:
//!
//! * [`isp_topology`] — a deterministic 32-node / 152-edge two-tier ISP-like
//!   graph standing in for the unnamed topology-zoo graph of §6.1;
//! * [`ripple_like`] — a scale-free graph with the degree profile of the
//!   pruned January-2013 Ripple snapshot (3,774 nodes / 12,512 edges at
//!   full scale), standing in for the proprietary trace.
//!
//! All generators take the uniform per-channel capacity as an argument
//! because that is how the paper provisions its experiments ("we set all
//! edges in the graph to have the same capacity").

use crate::graph::{Topology, TopologyBuilder};
use spider_types::{Amount, DetRng, NodeId};

fn nid(i: usize) -> NodeId {
    NodeId::from_index(i)
}

/// A path graph `0 - 1 - … - (n-1)`.
pub fn line(n: usize, capacity: Amount) -> Topology {
    let mut b = TopologyBuilder::new(n);
    for i in 1..n {
        b.channel(nid(i - 1), nid(i), capacity)
            .expect("valid line edge");
    }
    b.build()
}

/// A cycle graph on `n >= 3` nodes.
pub fn cycle(n: usize, capacity: Amount) -> Topology {
    assert!(n >= 3, "cycle needs at least 3 nodes");
    let mut b = TopologyBuilder::new(n);
    for i in 0..n {
        b.channel(nid(i), nid((i + 1) % n), capacity)
            .expect("valid cycle edge");
    }
    b.build()
}

/// A star: node 0 is the hub, nodes `1..n` are leaves.
pub fn star(n: usize, capacity: Amount) -> Topology {
    assert!(n >= 2, "star needs at least 2 nodes");
    let mut b = TopologyBuilder::new(n);
    for i in 1..n {
        b.channel(nid(0), nid(i), capacity)
            .expect("valid star edge");
    }
    b.build()
}

/// The complete graph on `n` nodes.
pub fn complete(n: usize, capacity: Amount) -> Topology {
    let mut b = TopologyBuilder::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            b.channel(nid(i), nid(j), capacity)
                .expect("valid complete edge");
        }
    }
    b.build()
}

/// A `w × h` grid (node `(x, y)` is index `y*w + x`).
pub fn grid(w: usize, h: usize, capacity: Amount) -> Topology {
    let mut b = TopologyBuilder::new(w * h);
    for y in 0..h {
        for x in 0..w {
            let i = y * w + x;
            if x + 1 < w {
                b.channel(nid(i), nid(i + 1), capacity)
                    .expect("valid grid edge");
            }
            if y + 1 < h {
                b.channel(nid(i), nid(i + w), capacity)
                    .expect("valid grid edge");
            }
        }
    }
    b.build()
}

/// A balanced tree with branching factor `b >= 1` and `depth` levels below
/// the root (depth 0 = a single node).
pub fn balanced_tree(branching: usize, depth: usize, capacity: Amount) -> Topology {
    assert!(branching >= 1, "branching factor must be at least 1");
    // Total nodes = 1 + b + b² + … + b^depth.
    let mut total = 1usize;
    let mut level = 1usize;
    for _ in 0..depth {
        level *= branching;
        total += level;
    }
    let mut builder = TopologyBuilder::new(total);
    let mut next = 1usize;
    let mut frontier = vec![0usize];
    for _ in 0..depth {
        let mut new_frontier = Vec::with_capacity(frontier.len() * branching);
        for &parent in &frontier {
            for _ in 0..branching {
                builder
                    .channel(nid(parent), nid(next), capacity)
                    .expect("valid tree edge");
                new_frontier.push(next);
                next += 1;
            }
        }
        frontier = new_frontier;
    }
    builder.build()
}

/// Erdős–Rényi `G(n, p)`: every pair is connected independently with
/// probability `p`. The result may be disconnected; callers that need a
/// connected graph should extract the largest component
/// ([`crate::analysis::largest_component`]).
pub fn erdos_renyi(n: usize, p: f64, capacity: Amount, rng: &mut DetRng) -> Topology {
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    let mut b = TopologyBuilder::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.chance(p) {
                b.channel(nid(i), nid(j), capacity).expect("valid ER edge");
            }
        }
    }
    b.build()
}

/// Watts–Strogatz small-world graph: a ring lattice where each node links to
/// its `k/2` nearest neighbors on each side (`k` even), with each edge
/// rewired with probability `beta`.
pub fn watts_strogatz(
    n: usize,
    k: usize,
    beta: f64,
    capacity: Amount,
    rng: &mut DetRng,
) -> Topology {
    assert!(k.is_multiple_of(2) && k >= 2, "k must be even and >= 2");
    assert!(k < n, "k must be smaller than n");
    assert!((0.0..=1.0).contains(&beta), "beta out of range");
    let mut b = TopologyBuilder::new(n);
    for i in 0..n {
        for off in 1..=(k / 2) {
            let mut j = (i + off) % n;
            if rng.chance(beta) {
                // Rewire the far endpoint to a uniform non-self,
                // non-duplicate node; give up after a bounded number of
                // retries to guarantee termination on dense graphs.
                for _ in 0..32 {
                    let cand = rng.index(n);
                    if cand != i && !b.has_channel(nid(i), nid(cand)) {
                        j = cand;
                        break;
                    }
                }
            }
            if !b.has_channel(nid(i), nid(j)) && i != j {
                b.channel(nid(i), nid(j), capacity).expect("valid WS edge");
            }
        }
    }
    b.build()
}

/// Barabási–Albert preferential attachment: starts from a complete graph on
/// `m + 1` nodes; each new node attaches to `m` distinct existing nodes with
/// probability proportional to their degree.
pub fn barabasi_albert(n: usize, m: usize, capacity: Amount, rng: &mut DetRng) -> Topology {
    assert!(m >= 1, "m must be at least 1");
    assert!(n > m, "need more nodes than attachment edges");
    let mut b = TopologyBuilder::new(n);
    // Repeated-endpoint list: each edge contributes both endpoints, so
    // sampling uniformly from it is degree-proportional sampling.
    let mut endpoint_pool: Vec<usize> = Vec::new();
    for i in 0..=m {
        for j in (i + 1)..=m {
            b.channel(nid(i), nid(j), capacity)
                .expect("valid BA seed edge");
            endpoint_pool.push(i);
            endpoint_pool.push(j);
        }
    }
    for new in (m + 1)..n {
        let mut targets: Vec<usize> = Vec::with_capacity(m);
        while targets.len() < m {
            let t = endpoint_pool[rng.index(endpoint_pool.len())];
            if t != new && !targets.contains(&t) {
                targets.push(t);
            }
        }
        for t in targets {
            b.channel(nid(new), nid(t), capacity)
                .expect("valid BA edge");
            endpoint_pool.push(new);
            endpoint_pool.push(t);
        }
    }
    b.build()
}

/// Number of nodes in [`isp_topology`].
pub const ISP_NODES: usize = 32;
/// Number of channels in [`isp_topology`].
pub const ISP_CHANNELS: usize = 152;

/// The deterministic 32-node / 152-channel ISP-like topology used for the
/// paper's first evaluation setting.
///
/// Structure (a classic two-tier ISP): nodes 0–7 form a fully meshed core
/// (28 channels); nodes 8–31 are access routers, each homed to four
/// distinct core nodes (96 channels); the access routers form a ring for
/// lateral traffic (24 channels); four long chords provide shortcut
/// diversity (4 channels). Total = 28 + 96 + 24 + 4 = 152, matching the
/// paper's edge count exactly.
pub fn isp_topology(capacity: Amount) -> Topology {
    let mut b = TopologyBuilder::new(ISP_NODES);
    // Core clique.
    for i in 0..8 {
        for j in (i + 1)..8 {
            b.channel(nid(i), nid(j), capacity).expect("core edge");
        }
    }
    // Access uplinks: access router a (8..32) homes to cores
    // (a, a+1, a+2, a+3) mod 8.
    for a in 8..32 {
        for off in 0..4 {
            b.channel(nid(a), nid((a + off) % 8), capacity)
                .expect("uplink edge");
        }
    }
    // Access ring.
    for i in 0..24 {
        b.channel(nid(8 + i), nid(8 + (i + 1) % 24), capacity)
            .expect("ring edge");
    }
    // Chords across the ring.
    for (x, y) in [(8, 20), (11, 23), (14, 26), (17, 29)] {
        b.channel(nid(x), nid(y), capacity).expect("chord edge");
    }
    let t = b.build();
    debug_assert_eq!(t.channel_count(), ISP_CHANNELS);
    t
}

/// Full-scale node count of the pruned Ripple snapshot (§6.1).
pub const RIPPLE_NODES: usize = 3774;
/// Full-scale channel count of the pruned Ripple snapshot.
pub const RIPPLE_CHANNELS: usize = 12512;

/// A Ripple-like scale-free topology with `n` nodes and roughly `3.3 × n`
/// channels (average degree ≈ 6.6, matching the pruned January-2013 Ripple
/// snapshot: 3,774 nodes and 12,512 edges).
///
/// Substitution note (see DESIGN.md): the real trace is not distributable;
/// a Barabási–Albert core (m = 3) plus ~10 % random chords reproduces the
/// heavy-tailed degree distribution and short path lengths that drive
/// routing behaviour. Generated with `n = RIPPLE_NODES` this produces a
/// graph of the same scale as the paper's.
pub fn ripple_like(n: usize, capacity: Amount, rng: &mut DetRng) -> Topology {
    assert!(n >= 8, "ripple-like graph needs at least 8 nodes");
    let base = barabasi_albert(n, 3, capacity, rng);
    // Add ~0.3 per-node extra chords to lift average degree from ~6 to ~6.6.
    let extra = (n as f64 * 0.3).round() as usize;
    let mut b = TopologyBuilder::new(n);
    for (_, c) in base.channels() {
        b.channel(c.u, c.v, c.capacity).expect("copy edge");
    }
    let mut added = 0;
    let mut attempts = 0;
    while added < extra && attempts < extra * 64 {
        attempts += 1;
        let i = rng.index(n);
        let j = rng.index(n);
        if i != j && !b.has_channel(nid(i), nid(j)) {
            b.channel(nid(i), nid(j), capacity).expect("chord edge");
            added += 1;
        }
    }
    b.build()
}

/// Number of nodes in the paper's §5.1 motivating example.
pub const PAPER_EXAMPLE_NODES: usize = 5;

/// The 5-node topology of the paper's Fig. 4 motivating example.
///
/// Nodes are numbered 1–5 in the paper; here they are 0–4 (paper node *k*
/// = `NodeId(k-1)`). Channels: 1-2, 2-3, 3-4, 2-4, 1-5, 3-5. On this graph,
/// with the demands of
/// [`paper-example demands`](fn@crate::gen::paper_example_topology):
///
/// * shortest-path balanced routing achieves throughput **5**,
/// * optimal balanced routing achieves **8** = ν(C*),
///
/// exactly the numbers quoted in §5.1. Every channel gets `capacity`.
pub fn paper_example_topology(capacity: Amount) -> Topology {
    let mut b = TopologyBuilder::new(PAPER_EXAMPLE_NODES);
    for (u, v) in [(1, 2), (2, 3), (3, 4), (2, 4), (1, 5), (3, 5)] {
        b.channel(nid(u - 1), nid(v - 1), capacity)
            .expect("paper example edge");
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;

    const CAP: Amount = Amount::from_xrp(30_000);

    #[test]
    fn line_shape() {
        let t = line(5, CAP);
        assert_eq!(t.node_count(), 5);
        assert_eq!(t.channel_count(), 4);
        assert!(t.is_connected());
        assert_eq!(t.degree(NodeId(0)), 1);
        assert_eq!(t.degree(NodeId(2)), 2);
    }

    #[test]
    fn cycle_shape() {
        let t = cycle(6, CAP);
        assert_eq!(t.channel_count(), 6);
        assert!(t.nodes().all(|n| t.degree(n) == 2));
        assert!(t.is_connected());
    }

    #[test]
    fn star_shape() {
        let t = star(7, CAP);
        assert_eq!(t.channel_count(), 6);
        assert_eq!(t.degree(NodeId(0)), 6);
        assert!((1..7).all(|i| t.degree(NodeId(i)) == 1));
    }

    #[test]
    fn complete_shape() {
        let t = complete(6, CAP);
        assert_eq!(t.channel_count(), 15);
        assert!(t.nodes().all(|n| t.degree(n) == 5));
    }

    #[test]
    fn grid_shape() {
        let t = grid(3, 4, CAP);
        assert_eq!(t.node_count(), 12);
        assert_eq!(t.channel_count(), 3 * 3 + 2 * 4); // vertical + horizontal
        assert!(t.is_connected());
        assert_eq!(t.degree(NodeId(0)), 2); // corner
    }

    #[test]
    fn tree_shape() {
        let t = balanced_tree(2, 3, CAP);
        assert_eq!(t.node_count(), 1 + 2 + 4 + 8);
        assert_eq!(t.channel_count(), t.node_count() - 1);
        assert!(t.is_connected());
        assert_eq!(t.degree(NodeId(0)), 2);
    }

    #[test]
    fn erdos_renyi_extremes_and_determinism() {
        let mut rng = DetRng::new(1);
        assert_eq!(erdos_renyi(10, 0.0, CAP, &mut rng).channel_count(), 0);
        let mut rng = DetRng::new(1);
        assert_eq!(erdos_renyi(10, 1.0, CAP, &mut rng).channel_count(), 45);
        let a = erdos_renyi(30, 0.2, CAP, &mut DetRng::new(9));
        let b = erdos_renyi(30, 0.2, CAP, &mut DetRng::new(9));
        assert_eq!(a, b);
    }

    #[test]
    fn watts_strogatz_no_rewire_is_ring_lattice() {
        let mut rng = DetRng::new(2);
        let t = watts_strogatz(10, 4, 0.0, CAP, &mut rng);
        assert_eq!(t.channel_count(), 10 * 4 / 2);
        assert!(t.nodes().all(|n| t.degree(n) == 4));
    }

    #[test]
    fn watts_strogatz_rewired_stays_simple() {
        let mut rng = DetRng::new(3);
        let t = watts_strogatz(50, 6, 0.3, CAP, &mut rng);
        // Simple graph invariants hold by construction; edge count can drop
        // slightly when rewiring collides.
        assert!(t.channel_count() <= 150);
        assert!(t.channel_count() >= 130);
    }

    #[test]
    fn barabasi_albert_edge_count_and_hubs() {
        let mut rng = DetRng::new(4);
        let n = 200;
        let m = 3;
        let t = barabasi_albert(n, m, CAP, &mut rng);
        // seed clique: C(4,2)=6 edges; each of the remaining 196 nodes adds 3.
        assert_eq!(t.channel_count(), 6 + (n - m - 1) * m);
        assert!(t.is_connected());
        let max_deg = t.nodes().map(|v| t.degree(v)).max().unwrap();
        // Scale-free: hubs should greatly exceed the mean degree (~6).
        assert!(max_deg > 15, "max degree {max_deg}");
    }

    #[test]
    fn isp_counts_match_paper() {
        let t = isp_topology(CAP);
        assert_eq!(t.node_count(), 32);
        assert_eq!(t.channel_count(), 152);
        assert!(t.is_connected());
        // Core nodes are the high-degree tier.
        let core_min = (0..8).map(|i| t.degree(NodeId(i))).min().unwrap();
        let access_max = (8..32).map(|i| t.degree(NodeId(i))).max().unwrap();
        assert!(core_min >= 7 + 12, "core degree {core_min}"); // clique + uplinks
        assert!(access_max <= 4 + 2 + 1, "access degree {access_max}");
    }

    #[test]
    fn isp_is_deterministic() {
        assert_eq!(isp_topology(CAP), isp_topology(CAP));
    }

    #[test]
    fn ripple_like_scale_and_skew() {
        let mut rng = DetRng::new(5);
        let n = 500;
        let t = ripple_like(n, CAP, &mut rng);
        let avg_deg = 2.0 * t.channel_count() as f64 / n as f64;
        assert!((6.0..7.4).contains(&avg_deg), "avg degree {avg_deg}");
        let comp = analysis::largest_component(&t);
        assert!(comp.node_count() >= n * 95 / 100);
        let max_deg = t.nodes().map(|v| t.degree(v)).max().unwrap();
        assert!(
            max_deg as f64 > 4.0 * avg_deg,
            "not heavy-tailed: {max_deg}"
        );
    }

    #[test]
    fn paper_example_shape() {
        let t = paper_example_topology(CAP);
        assert_eq!(t.node_count(), 5);
        assert_eq!(t.channel_count(), 6);
        // Paper node 4 (index 3) connects to 3 and 2 (indices 2, 1).
        assert!(t.channel_between(NodeId(3), NodeId(2)).is_some());
        assert!(t.channel_between(NodeId(3), NodeId(1)).is_some());
        assert!(t.channel_between(NodeId(3), NodeId(0)).is_none());
        // The unique shortest path 4→1 goes through 2 (paper's green flow).
        assert_eq!(
            t.shortest_path(NodeId(3), NodeId(0)).unwrap(),
            vec![NodeId(3), NodeId(1), NodeId(0)]
        );
    }
}
