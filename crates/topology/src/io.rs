//! Plain-text topology interchange format.
//!
//! ```text
//! # comments and blank lines are ignored
//! nodes 5
//! channel 0 1 30000000000       # u v capacity_in_drops
//! channel 1 2 30000000000
//! ```
//!
//! The format is line-oriented so external tools (or the SpeedyMurmurs
//! artifact's converters) can produce it with a one-line awk script.

use crate::graph::{Topology, TopologyBuilder};
use spider_types::{Amount, NodeId, Result, SpiderError};

/// Serializes a topology to the text format.
pub fn to_text(t: &Topology) -> String {
    let mut out = String::new();
    out.push_str("# spider topology v1\n");
    out.push_str(&format!("nodes {}\n", t.node_count()));
    for (_, c) in t.channels() {
        out.push_str(&format!(
            "channel {} {} {}\n",
            c.u.index(),
            c.v.index(),
            c.capacity.drops()
        ));
    }
    out
}

/// Parses a topology from the text format.
pub fn from_text(text: &str) -> Result<Topology> {
    let mut builder: Option<TopologyBuilder> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let keyword = parts.next().expect("non-empty line has a token");
        let err = |msg: &str| SpiderError::Parse(format!("line {}: {msg}", lineno + 1));
        match keyword {
            "nodes" => {
                if builder.is_some() {
                    return Err(err("duplicate `nodes` declaration"));
                }
                let n: usize = parts
                    .next()
                    .ok_or_else(|| err("missing node count"))?
                    .parse()
                    .map_err(|_| err("invalid node count"))?;
                if parts.next().is_some() {
                    return Err(err("trailing tokens after node count"));
                }
                builder = Some(TopologyBuilder::new(n));
            }
            "channel" => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| err("`channel` before `nodes`"))?;
                let mut field = |name: &str| -> Result<u64> {
                    parts
                        .next()
                        .ok_or_else(|| err(&format!("missing {name}")))?
                        .parse::<u64>()
                        .map_err(|_| err(&format!("invalid {name}")))
                };
                let u = field("endpoint u")?;
                let v = field("endpoint v")?;
                let cap = field("capacity")?;
                if parts.next().is_some() {
                    return Err(err("trailing tokens after channel"));
                }
                // Range-check before NodeId::from_index, which panics on
                // indices beyond u32 (malformed input must error instead).
                let node = |x: u64, name: &str| -> Result<NodeId> {
                    u32::try_from(x)
                        .map(NodeId)
                        .map_err(|_| err(&format!("{name} out of range")))
                };
                b.channel(
                    node(u, "endpoint u")?,
                    node(v, "endpoint v")?,
                    Amount::from_drops(cap),
                )
                .map_err(|e| err(&e.to_string()))?;
            }
            other => return Err(err(&format!("unknown keyword `{other}`"))),
        }
    }
    Ok(builder
        .ok_or_else(|| SpiderError::Parse("no `nodes` declaration".into()))?
        .build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn round_trip() {
        let t = gen::isp_topology(Amount::from_xrp(30_000));
        let text = to_text(&t);
        let back = from_text(&text).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "\n# hello\nnodes 3 # three nodes\n\nchannel 0 1 5\nchannel 1 2 7 # done\n";
        let t = from_text(text).unwrap();
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.channel_count(), 2);
        assert_eq!(
            t.channel(spider_types::ChannelId(0)).capacity,
            Amount::from_drops(5)
        );
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_text("channel 0 1 5\n").is_err()); // channel before nodes
        assert!(from_text("nodes 2\nnodes 3\n").is_err()); // duplicate nodes
        assert!(from_text("nodes x\n").is_err());
        assert!(from_text("nodes 2\nchannel 0 1\n").is_err()); // missing capacity
        assert!(from_text("nodes 2\nchannel 0 5 1\n").is_err()); // unknown node
        assert!(from_text("nodes 2\nchannel 0 0 1\n").is_err()); // self-loop
        assert!(from_text("nodes 2\nfrobnicate\n").is_err()); // unknown keyword
        assert!(from_text("").is_err()); // empty
        assert!(from_text("nodes 2\nchannel 0 1 1 9\n").is_err()); // trailing token
    }

    #[test]
    fn error_mentions_line_number() {
        let e = from_text("nodes 2\nchannel 0 1 bad\n").unwrap_err();
        assert!(e.to_string().contains("line 2"), "{e}");
    }

    /// Property-style round-trip: every topology family, over many seeds,
    /// survives `to_text` → `from_text` unchanged.
    #[test]
    fn round_trip_random_topologies() {
        let cap = Amount::from_xrp(1_000);
        for seed in 0..24u64 {
            let mut rng = spider_types::DetRng::new(seed);
            let topologies = [
                gen::erdos_renyi(12, 0.3, cap, &mut rng),
                gen::barabasi_albert(20, 2, cap, &mut rng),
                gen::watts_strogatz(16, 4, 0.2, cap, &mut rng),
                gen::ripple_like(30, cap, &mut rng),
            ];
            for t in topologies {
                let text = to_text(&t);
                let back = from_text(&text).expect("generated topology parses");
                assert_eq!(t, back, "seed {seed}");
                // Second round trip is a fixpoint.
                assert_eq!(to_text(&back), text);
            }
        }
    }

    /// Round trip preserves extreme but valid capacities to the drop.
    #[test]
    fn round_trip_extreme_capacities() {
        let mut b = crate::Topology::builder(3);
        b.channel(NodeId(0), NodeId(1), Amount::from_drops(1))
            .unwrap();
        b.channel(NodeId(1), NodeId(2), Amount::from_drops(u64::MAX))
            .unwrap();
        let t = b.build();
        let back = from_text(&to_text(&t)).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn rejects_duplicate_nodes_even_with_same_count() {
        assert!(from_text("nodes 3\nnodes 3\n").is_err());
    }

    #[test]
    fn rejects_trailing_tokens_on_nodes_line() {
        assert!(from_text("nodes 2 7\n").is_err());
        // A comment after the count is fine, though.
        assert!(from_text("nodes 2 # two\nchannel 0 1 5\n").is_ok());
    }

    #[test]
    fn rejects_out_of_range_channel_endpoints() {
        assert!(from_text("nodes 3\nchannel 0 3 1\n").is_err()); // v == n
        assert!(from_text("nodes 3\nchannel 7 1 1\n").is_err()); // u > n
        assert!(from_text("nodes 3\nchannel 0 18446744073709551615 1\n").is_err());
    }

    #[test]
    fn rejects_duplicate_and_reversed_duplicate_channels() {
        assert!(from_text("nodes 3\nchannel 0 1 5\nchannel 0 1 9\n").is_err());
        assert!(from_text("nodes 3\nchannel 0 1 5\nchannel 1 0 9\n").is_err());
    }

    #[test]
    fn rejects_non_numeric_and_signed_fields() {
        assert!(from_text("nodes -2\n").is_err());
        assert!(from_text("nodes 2\nchannel 0 1 -5\n").is_err());
        assert!(from_text("nodes 2\nchannel 0 1 5.5\n").is_err());
        assert!(from_text("nodes 2\nchannel zero 1 5\n").is_err());
        // Capacity beyond u64::MAX overflows the field parser.
        assert!(from_text("nodes 2\nchannel 0 1 18446744073709551616\n").is_err());
    }

    #[test]
    fn comment_only_document_has_no_nodes() {
        assert!(from_text("# nothing here\n\n# still nothing\n").is_err());
    }

    #[test]
    fn errors_carry_the_failing_line_for_malformed_channels() {
        let e = from_text("nodes 3\nchannel 0 1 5\nchannel 0 1 5\n").unwrap_err();
        assert!(e.to_string().contains("line 3"), "{e}");
        let e = from_text("# c\n\nnodes 2\nchannel 0 1\n").unwrap_err();
        assert!(e.to_string().contains("line 4"), "{e}");
    }
}
