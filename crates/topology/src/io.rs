//! Plain-text topology interchange format.
//!
//! ```text
//! # comments and blank lines are ignored
//! nodes 5
//! channel 0 1 30000000000       # u v capacity_in_drops
//! channel 1 2 30000000000
//! ```
//!
//! The format is line-oriented so external tools (or the SpeedyMurmurs
//! artifact's converters) can produce it with a one-line awk script.

use crate::graph::{Topology, TopologyBuilder};
use spider_types::{Amount, NodeId, Result, SpiderError};

/// Serializes a topology to the text format.
pub fn to_text(t: &Topology) -> String {
    let mut out = String::new();
    out.push_str("# spider topology v1\n");
    out.push_str(&format!("nodes {}\n", t.node_count()));
    for (_, c) in t.channels() {
        out.push_str(&format!("channel {} {} {}\n", c.u.index(), c.v.index(), c.capacity.drops()));
    }
    out
}

/// Parses a topology from the text format.
pub fn from_text(text: &str) -> Result<Topology> {
    let mut builder: Option<TopologyBuilder> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let keyword = parts.next().expect("non-empty line has a token");
        let err = |msg: &str| SpiderError::Parse(format!("line {}: {msg}", lineno + 1));
        match keyword {
            "nodes" => {
                if builder.is_some() {
                    return Err(err("duplicate `nodes` declaration"));
                }
                let n: usize = parts
                    .next()
                    .ok_or_else(|| err("missing node count"))?
                    .parse()
                    .map_err(|_| err("invalid node count"))?;
                if parts.next().is_some() {
                    return Err(err("trailing tokens after node count"));
                }
                builder = Some(TopologyBuilder::new(n));
            }
            "channel" => {
                let b = builder.as_mut().ok_or_else(|| err("`channel` before `nodes`"))?;
                let mut field = |name: &str| -> Result<u64> {
                    parts
                        .next()
                        .ok_or_else(|| err(&format!("missing {name}")))?
                        .parse::<u64>()
                        .map_err(|_| err(&format!("invalid {name}")))
                };
                let u = field("endpoint u")?;
                let v = field("endpoint v")?;
                let cap = field("capacity")?;
                if parts.next().is_some() {
                    return Err(err("trailing tokens after channel"));
                }
                b.channel(
                    NodeId::from_index(u as usize),
                    NodeId::from_index(v as usize),
                    Amount::from_drops(cap),
                )
                .map_err(|e| err(&e.to_string()))?;
            }
            other => return Err(err(&format!("unknown keyword `{other}`"))),
        }
    }
    Ok(builder.ok_or_else(|| SpiderError::Parse("no `nodes` declaration".into()))?.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn round_trip() {
        let t = gen::isp_topology(Amount::from_xrp(30_000));
        let text = to_text(&t);
        let back = from_text(&text).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "\n# hello\nnodes 3 # three nodes\n\nchannel 0 1 5\nchannel 1 2 7 # done\n";
        let t = from_text(text).unwrap();
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.channel_count(), 2);
        assert_eq!(t.channel(spider_types::ChannelId(0)).capacity, Amount::from_drops(5));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_text("channel 0 1 5\n").is_err()); // channel before nodes
        assert!(from_text("nodes 2\nnodes 3\n").is_err()); // duplicate nodes
        assert!(from_text("nodes x\n").is_err());
        assert!(from_text("nodes 2\nchannel 0 1\n").is_err()); // missing capacity
        assert!(from_text("nodes 2\nchannel 0 5 1\n").is_err()); // unknown node
        assert!(from_text("nodes 2\nchannel 0 0 1\n").is_err()); // self-loop
        assert!(from_text("nodes 2\nfrobnicate\n").is_err()); // unknown keyword
        assert!(from_text("").is_err()); // empty
        assert!(from_text("nodes 2\nchannel 0 1 1 9\n").is_err()); // trailing token
    }

    #[test]
    fn error_mentions_line_number() {
        let e = from_text("nodes 2\nchannel 0 1 bad\n").unwrap_err();
        assert!(e.to_string().contains("line 2"), "{e}");
    }
}
