//! Offline stand-in for [rand](https://docs.rs/rand).
//!
//! Provides the subset `spider-types::rng` uses: [`rngs::SmallRng`]
//! (xoshiro256++, the algorithm rand's own 64-bit `SmallRng` uses),
//! [`SeedableRng::seed_from_u64`], the infallible [`Rng`] core API, the
//! [`RngExt`] convenience layer (`random`, `random_range`), and the
//! [`rand_core::TryRng`] fallible trait whose blanket impl lifts any
//! infallible generator into [`Rng`]/[`RngExt`].
//!
//! The streams are deterministic and stable across platforms and releases
//! of this shim; they do not match upstream rand's bit streams.

#![forbid(unsafe_code)]

use std::convert::Infallible;
use std::ops::Range;

/// Fallible generation core, mirroring `rand_core`.
pub mod rand_core {
    /// A random source that may fail.
    pub trait TryRng {
        /// Error produced on failure (use `Infallible` for none).
        type Error;
        /// Next 32 random bits.
        fn try_next_u32(&mut self) -> Result<u32, Self::Error>;
        /// Next 64 random bits.
        fn try_next_u64(&mut self) -> Result<u64, Self::Error>;
        /// Fills `dst` with random bytes.
        fn try_fill_bytes(&mut self, dst: &mut [u8]) -> Result<(), Self::Error>;
    }
}

/// Infallible random source.
pub trait Rng {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dst` with random bytes.
    fn fill_bytes(&mut self, dst: &mut [u8]);
}

impl<T: rand_core::TryRng<Error = Infallible>> Rng for T {
    fn next_u32(&mut self) -> u32 {
        match self.try_next_u32() {
            Ok(v) => v,
        }
    }
    fn next_u64(&mut self) -> u64 {
        match self.try_next_u64() {
            Ok(v) => v,
        }
    }
    fn fill_bytes(&mut self, dst: &mut [u8]) {
        match self.try_fill_bytes(dst) {
            Ok(()) => {}
        }
    }
}

/// Types samplable uniformly from an RNG's raw bits.
pub trait Random: Sized {
    /// Draws one value.
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Random for u32 {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Random for u64 {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for bool {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits → [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! sample_uint_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift: maps 64 random bits onto [0, span) with
                // bias < 2^-64 per draw — deterministic and branch-free.
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + draw as $t
            }
        }
    )*};
}
sample_uint_range!(u8, u16, u32, u64, usize);

macro_rules! sample_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(draw as $t)
            }
        }
    )*};
}
sample_int_range!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::random_from(rng) * (self.end - self.start)
    }
}

/// Convenience sampling layer over [`Rng`].
pub trait RngExt: Rng {
    /// Uniform draw of `T` from the generator's raw bits.
    fn random<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random_from(self)
    }

    /// Uniform draw from a half-open range.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: Rng + ?Sized> RngExt for T {}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{rand_core::TryRng, SeedableRng};
    use std::convert::Infallible;

    /// xoshiro256++ — the small, fast, non-cryptographic generator.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl SmallRng {
        #[inline]
        fn step(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl TryRng for SmallRng {
        type Error = Infallible;

        fn try_next_u32(&mut self) -> Result<u32, Infallible> {
            Ok((self.step() >> 32) as u32)
        }
        fn try_next_u64(&mut self) -> Result<u64, Infallible> {
            Ok(self.step())
        }
        fn try_fill_bytes(&mut self, dst: &mut [u8]) -> Result<(), Infallible> {
            for chunk in dst.chunks_mut(8) {
                let bytes = self.step().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        let mut c = SmallRng::seed_from_u64(2);
        let sa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_bounds_hold() {
        let mut r = SmallRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let v = r.random_range(10usize..20);
            assert!((10..20).contains(&v));
        }
        assert_eq!(r.random_range(5u64..6), 5);
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = SmallRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn range_distribution_roughly_uniform() {
        let mut r = SmallRng::seed_from_u64(6);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[r.random_range(0usize..10)] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "count {c}");
        }
    }
}
