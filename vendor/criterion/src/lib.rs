//! Offline stand-in for [criterion](https://docs.rs/criterion).
//!
//! The build environment has no crates.io access, so this shim provides the
//! subset of criterion's API the workspace's benches use: `Criterion`,
//! benchmark groups, `iter` / `iter_batched`, `BatchSize`, and the
//! `criterion_group!` / `criterion_main!` macros. Timing is a plain
//! wall-clock median over a fixed number of samples — adequate for spotting
//! order-of-magnitude regressions, not for statistically rigorous
//! comparisons.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Number of timed samples per benchmark.
const SAMPLES: usize = 15;
/// Target time per sample; iteration counts adapt to hit roughly this.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(200);

/// Re-export of `std::hint::black_box` under criterion's name.
pub use std::hint::black_box;

/// How batched inputs are grouped between setup calls (accepted for API
/// compatibility; the shim regenerates the input every iteration).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _parent: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, &mut f);
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, name), &mut f);
        self
    }

    /// Accepted for API compatibility; sampling is fixed in the shim.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to benchmark closures to drive timed iterations.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate an iteration count that fills the target sample time.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(50));
        let iters = (TARGET_SAMPLE_TIME.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u32;
        for _ in 0..SAMPLES {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters);
        }
    }

    /// Times `routine` on fresh inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..SAMPLES {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, f: &mut F) {
    let mut b = Bencher {
        samples: Vec::new(),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    let min = b.samples[0];
    let max = *b.samples.last().expect("non-empty");
    println!(
        "{name:<40} median {:>12} (min {:>12}, max {:>12})",
        fmt_duration(median),
        fmt_duration(min),
        fmt_duration(max)
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Collects benchmark functions into a runnable group, as criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
