//! Offline stand-in for [proptest](https://docs.rs/proptest).
//!
//! Supports the subset this workspace's property tests use: numeric range
//! strategies, tuples of strategies, `proptest::collection::vec`, the
//! `proptest!` macro, and `prop_assert!`/`prop_assert_eq!`. Case generation
//! is deterministic (fixed seed per test body, 64 cases); there is no
//! shrinking — a failing case panics with the ordinary assert message.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Deterministic case-generation RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Creates the generator for one property body.
    pub fn new(seed: u64) -> Self {
        TestRng(seed)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one case.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! uint_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
uint_strategy!(u8, u16, u32, u64, usize);

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
int_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident | $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy!(
    (A | 0, B | 1),
    (A | 0, B | 1, C | 2),
    (A | 0, B | 1, C | 2, D | 3)
);

/// Element counts for collection strategies: a fixed size or a range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of values drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64;
            let n = self.size.lo
                + if span > 0 {
                    rng.below(span) as usize
                } else {
                    0
                };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Number of cases generated per property.
pub const CASES: u64 = 64;

/// The common imports property tests start from.
pub mod prelude {
    pub use crate::{collection, prop_assert, prop_assert_eq, proptest, Strategy, TestRng};
}

/// Declares property tests: each function body runs [`CASES`] times with
/// arguments drawn from its strategies.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                // Per-test deterministic seed: FNV-1a of the test name.
                let mut __seed: u64 = 0xcbf2_9ce4_8422_2325;
                for __b in stringify!($name).bytes() {
                    __seed ^= __b as u64;
                    __seed = __seed.wrapping_mul(0x0000_0100_0000_01b3);
                }
                for __case in 0..$crate::CASES {
                    let mut __rng = $crate::TestRng::new(__seed ^ (__case.wrapping_mul(0x9e37_79b9_7f4a_7c15)));
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u64..10, f in -1.0f64..1.0, n in 0usize..4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
            prop_assert!(n < 4);
        }

        #[test]
        fn vec_sizes(v in collection::vec((0u32..5, 0u32..5), 1..7)) {
            prop_assert!(!v.is_empty() && v.len() < 7);
            for (a, b) in v {
                prop_assert!(a < 5 && b < 5);
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::new(9);
        let mut b = TestRng::new(9);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
