//! Offline stand-in for [serde](https://serde.rs).
//!
//! The build environment for this repository has no access to crates.io, so
//! this workspace vendors a minimal serde-compatible shim: a self-describing
//! [`Value`] model, [`Serialize`]/[`Deserialize`] traits that convert to and
//! from it, and derive macros (in `serde_derive`) covering the subset of
//! shapes this codebase uses:
//!
//! * structs with named fields;
//! * newtype / tuple structs, with `#[serde(transparent)]` support;
//! * enums with unit and struct variants (externally tagged, like serde).
//!
//! `serde_json` (also vendored) renders [`Value`] to JSON text and parses it
//! back. The API is intentionally tiny; it is not a general-purpose serde
//! replacement, just enough for deterministic experiment configs and reports.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing data value, the interchange point between
/// [`Serialize`]/[`Deserialize`] impls and data formats.
///
/// Object fields keep insertion order so serialized output is deterministic
/// and mirrors struct declaration order, as serde_json does for structs.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed (negative) integer.
    I64(i64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with ordered fields.
    Object(Vec<(String, Value)>),
}

/// Shared `null` used when indexing misses (mirrors serde_json).
pub static NULL: Value = Value::Null;

impl Value {
    /// Fields of an object, or `None` for any other variant.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Elements of an array, or `None` for any other variant.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// String content, or `None`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric content widened to `f64`, or `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(u) => Some(u as f64),
            Value::I64(i) => Some(i as f64),
            Value::F64(f) => Some(f),
            _ => None,
        }
    }

    /// Unsigned integer content, or `None`.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(u) => Some(u),
            Value::I64(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    /// Signed integer content, or `None`.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::U64(u) => i64::try_from(u).ok(),
            Value::I64(i) => Some(i),
            _ => None,
        }
    }

    /// True iff `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Looks up `name` in an object's fields, returning [`NULL`] when the
    /// field is absent (derive-generated code uses this so `Option` fields
    /// tolerate omission).
    pub fn get_field<'a>(fields: &'a [(String, Value)], name: &str) -> &'a Value {
        fields
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .unwrap_or(&NULL)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        match self {
            Value::Object(o) => Value::get_field(o, key),
            _ => &NULL,
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}

macro_rules! eq_signed {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_i64() == Some(*other as i64)
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}
macro_rules! eq_unsigned {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_u64() == Some(*other as u64)
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}
eq_signed!(i8, i16, i32, i64, isize);
eq_unsigned!(u8, u16, u32, u64, usize);

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

/// Deserialization error: a human-readable message.
#[derive(Debug, Clone)]
pub struct DeError(String);

impl DeError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Converts `self` into a [`Value`].
pub trait Serialize {
    /// The value representation of `self`.
    fn to_value(&self) -> Value;
}

/// Builds `Self` from a [`Value`].
pub trait Deserialize: Sized {
    /// Parses `v` into `Self`.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---- primitive impls -------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::new("expected bool")),
        }
    }
}

macro_rules! int_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let u = v.as_u64().ok_or_else(|| DeError::new("expected unsigned integer"))?;
                <$t>::try_from(u).map_err(|_| DeError::new("integer out of range"))
            }
        }
    )*};
}
macro_rules! int_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::U64(i as u64) } else { Value::I64(i) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let i = v.as_i64().ok_or_else(|| DeError::new("expected integer"))?;
                <$t>::try_from(i).map_err(|_| DeError::new("integer out of range"))
            }
        }
    )*};
}
int_unsigned!(u8, u16, u32, u64, usize);
int_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::new("expected number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| DeError::new("expected number"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::new("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::new("expected char"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::new("expected single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::new("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

// Fixed-size arrays serialize like `Vec` and deserialize with an exact
// arity check — added for the `spider-dynamics` config shapes (e.g.
// `[f64; 2]` ranges). The derive macros stay generics-free; these impls
// are generic over `N` only, which the shim's trait layer supports.
impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v.as_array().ok_or_else(|| DeError::new("expected array"))?;
        if items.len() != N {
            return Err(DeError::new(format!(
                "expected array of length {N}, found {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| DeError::new("array arity mismatch"))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v.as_array() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(DeError::new("expected 2-element array")),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v.as_array() {
            Some([a, b, c]) => Ok((A::from_value(a)?, B::from_value(b)?, C::from_value(c)?)),
            _ => Err(DeError::new("expected 3-element array")),
        }
    }
}

// Maps serialize as arrays of `[key, value]` pairs unless the key is a
// string. This diverges from serde_json (which rejects non-string keys) but
// keeps round-trips lossless for the `BTreeMap<(NodeId, NodeId), _>` tables
// this workspace stores.
impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v
            .as_array()
            .ok_or_else(|| DeError::new("expected array of pairs"))?;
        let mut out = BTreeMap::new();
        for item in items {
            match item.as_array() {
                Some([k, val]) => {
                    out.insert(K::from_value(k)?, V::from_value(val)?);
                }
                _ => return Err(DeError::new("expected [key, value] pair")),
            }
        }
        Ok(out)
    }
}

impl<K: Serialize + Ord + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output.
        let mut pairs: Vec<(&K, &V)> = self.iter().collect();
        pairs.sort_by(|a, b| a.0.cmp(b.0));
        Value::Array(
            pairs
                .into_iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v
            .as_array()
            .ok_or_else(|| DeError::new("expected array of pairs"))?;
        let mut out = HashMap::with_capacity(items.len());
        for item in items {
            match item.as_array() {
                Some([k, val]) => {
                    out.insert(K::from_value(k)?, V::from_value(val)?);
                }
                _ => return Err(DeError::new("expected [key, value] pair")),
            }
        }
        Ok(out)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_indexing_and_eq() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("spider".into())),
            ("n".into(), Value::U64(7)),
        ]);
        assert_eq!(v["name"], "spider");
        assert_eq!(v["n"], 7);
        assert!(v["missing"].is_null());
    }

    #[test]
    fn option_round_trip() {
        let some = Some(3u64).to_value();
        assert_eq!(Option::<u64>::from_value(&some).unwrap(), Some(3));
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn fixed_array_round_trip() {
        let a = [0.25f64, 4.0];
        let v = a.to_value();
        let back: [f64; 2] = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, a);
        // Wrong arity is rejected, matching serde's strictness.
        assert!(<[f64; 3]>::from_value(&v).is_err());
        assert!(<[u32; 2]>::from_value(&Value::Null).is_err());
    }

    #[test]
    fn map_round_trip() {
        let mut m = BTreeMap::new();
        m.insert((1u32, 2u32), 0.5f64);
        let v = m.to_value();
        let back: BTreeMap<(u32, u32), f64> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, m);
    }
}
