//! Derive macros for the vendored serde shim.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shapes this workspace uses, parsing the item's token stream directly
//! (the offline build environment has no `syn`/`quote`):
//!
//! * structs with named fields → externally ordered JSON objects;
//! * tuple structs (including `#[serde(transparent)]` newtypes) → the inner
//!   value for a single field, an array otherwise;
//! * enums with unit variants (→ `"Variant"`) and struct variants
//!   (→ `{"Variant": {...}}`), serde's externally-tagged representation.
//!
//! Generics are not supported — no derived type in this workspace needs
//! them — and unsupported shapes fail the build with a clear message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

struct Item {
    name: String,
    is_enum: bool,
    transparent: bool,
    /// For structs: single entry keyed "". For enums: one entry per variant.
    bodies: Vec<(String, Fields)>,
}

/// Derives the shim's `Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives the shim's `Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---- parsing ---------------------------------------------------------------

/// Skips attributes (`#[...]`) at `i`, returning whether any was
/// `#[serde(transparent)]`.
fn skip_attrs(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut transparent = false;
    while *i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[*i] {
            if p.as_char() == '#' {
                if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
                    if g.delimiter() == Delimiter::Bracket {
                        let text = g.stream().to_string();
                        if text.starts_with("serde") && text.contains("transparent") {
                            transparent = true;
                        }
                        *i += 2;
                        continue;
                    }
                }
            }
        }
        break;
    }
    transparent
}

/// Skips a visibility modifier (`pub`, `pub(crate)`, …) at `i`.
fn skip_vis(tokens: &[TokenTree], i: &mut usize) {
    if matches!(&tokens[*i], TokenTree::Ident(id) if id.to_string() == "pub") {
        *i += 1;
        if let Some(TokenTree::Group(g)) = tokens.get(*i) {
            if g.delimiter() == Delimiter::Parenthesis {
                *i += 1;
            }
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut transparent = skip_attrs(&tokens, &mut i);
    skip_vis(&tokens, &mut i);
    let kw = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected struct/enum, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected type name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive: generic type `{name}` is not supported");
    }
    match kw.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let (named, t) = parse_named_fields(g.stream());
                    transparent |= t;
                    Fields::Named(named)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("serde shim derive: unsupported struct body {other:?}"),
            };
            Item {
                name,
                is_enum: false,
                transparent,
                bodies: vec![(String::new(), fields)],
            }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde shim derive: expected enum body, found {other:?}"),
            };
            Item {
                name,
                is_enum: true,
                transparent: false,
                bodies: parse_variants(body),
            }
        }
        other => panic!("serde shim derive: unsupported item kind `{other}`"),
    }
}

/// Parses `{ field: Type, ... }` into field names; detects a field-level
/// `#[serde(transparent)]` (not used in this workspace, but harmless).
fn parse_named_fields(body: TokenStream) -> (Vec<String>, bool) {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    let mut transparent = false;
    while i < tokens.len() {
        transparent |= skip_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_vis(&tokens, &mut i);
        match &tokens[i] {
            TokenTree::Ident(id) => fields.push(id.to_string()),
            other => panic!("serde shim derive: expected field name, found {other}"),
        }
        i += 1;
        assert!(
            matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ':'),
            "serde shim derive: expected `:` after field name"
        );
        i += 1;
        // Consume the type: everything up to a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    (fields, transparent)
}

/// Counts the fields of a tuple struct / variant body `(A, B, ...)`.
fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut depth = 0i32;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => count += 1,
            _ => {}
        }
    }
    // Tolerate a trailing comma.
    if matches!(tokens.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        count -= 1;
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<(String, Fields)> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim derive: expected variant name, found {other}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()).0)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push((name, fields));
    }
    variants
}

// ---- code generation -------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = if item.is_enum {
        let mut arms = String::new();
        for (variant, fields) in &item.bodies {
            match fields {
                Fields::Unit => {
                    arms.push_str(&format!(
                        "{name}::{variant} => ::serde::Value::Str(::std::string::String::from(\"{variant}\")),\n"
                    ));
                }
                Fields::Named(fs) => {
                    let bindings = fs.join(", ");
                    let mut pushes = String::new();
                    for f in fs {
                        pushes.push_str(&format!(
                            "__fields.push((::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({f})));\n"
                        ));
                    }
                    arms.push_str(&format!(
                        "{name}::{variant} {{ {bindings} }} => {{\n\
                         let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{variant}\"), ::serde::Value::Object(__fields))])\n\
                         }},\n"
                    ));
                }
                Fields::Tuple(n) => {
                    let bindings: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                    let binding_list = bindings.join(", ");
                    let inner = if *n == 1 {
                        "::serde::Serialize::to_value(__f0)".to_string()
                    } else {
                        let elems: Vec<String> = bindings
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        format!("::serde::Value::Array(::std::vec![{}])", elems.join(", "))
                    };
                    arms.push_str(&format!(
                        "{name}::{variant}({binding_list}) => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{variant}\"), {inner})]),\n"
                    ));
                }
            }
        }
        format!("match self {{\n{arms}\n}}")
    } else {
        match &item.bodies[0].1 {
            Fields::Unit => "::serde::Value::Null".to_string(),
            Fields::Named(fs) if item.transparent && fs.len() == 1 => {
                format!("::serde::Serialize::to_value(&self.{})", fs[0])
            }
            Fields::Named(fs) => {
                let mut pushes = String::new();
                for f in fs {
                    pushes.push_str(&format!(
                        "__fields.push((::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f})));\n"
                    ));
                }
                format!(
                    "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                     {pushes}\
                     ::serde::Value::Object(__fields)"
                )
            }
            Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
            Fields::Tuple(n) => {
                let elems: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(::std::vec![{}])", elems.join(", "))
            }
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = if item.is_enum {
        let mut unit_arms = String::new();
        let mut tagged_arms = String::new();
        for (variant, fields) in &item.bodies {
            match fields {
                Fields::Unit => {
                    unit_arms.push_str(&format!(
                        "\"{variant}\" => ::std::result::Result::Ok({name}::{variant}),\n"
                    ));
                }
                Fields::Named(fs) => {
                    let mut inits = String::new();
                    for f in fs {
                        inits.push_str(&format!(
                            "{f}: ::serde::Deserialize::from_value(::serde::Value::get_field(__inner_fields, \"{f}\"))?,\n"
                        ));
                    }
                    tagged_arms.push_str(&format!(
                        "\"{variant}\" => {{\n\
                         let __inner_fields = __inner.as_object().ok_or_else(|| ::serde::DeError::new(\"expected object for variant {variant}\"))?;\n\
                         ::std::result::Result::Ok({name}::{variant} {{ {inits} }})\n\
                         }},\n"
                    ));
                }
                Fields::Tuple(1) => {
                    tagged_arms.push_str(&format!(
                        "\"{variant}\" => ::std::result::Result::Ok({name}::{variant}(::serde::Deserialize::from_value(__inner)?)),\n"
                    ));
                }
                Fields::Tuple(n) => {
                    let mut inits = Vec::new();
                    for idx in 0..*n {
                        inits.push(format!(
                            "::serde::Deserialize::from_value(&__items[{idx}])?"
                        ));
                    }
                    tagged_arms.push_str(&format!(
                        "\"{variant}\" => {{\n\
                         let __items = __inner.as_array().ok_or_else(|| ::serde::DeError::new(\"expected array for variant {variant}\"))?;\n\
                         if __items.len() != {n} {{ return ::std::result::Result::Err(::serde::DeError::new(\"wrong arity for variant {variant}\")); }}\n\
                         ::std::result::Result::Ok({name}::{variant}({inits}))\n\
                         }},\n",
                        inits = inits.join(", ")
                    ));
                }
            }
        }
        format!(
            "match __v {{\n\
             ::serde::Value::Str(__s) => match __s.as_str() {{\n\
             {unit_arms}\
             __other => ::std::result::Result::Err(::serde::DeError::new(::std::format!(\"unknown unit variant `{{__other}}` for {name}\"))),\n\
             }},\n\
             ::serde::Value::Object(__kv) if __kv.len() == 1 => {{\n\
             let (__tag, __inner) = &__kv[0];\n\
             match __tag.as_str() {{\n\
             {tagged_arms}\
             __other => ::std::result::Result::Err(::serde::DeError::new(::std::format!(\"unknown variant `{{__other}}` for {name}\"))),\n\
             }}\n\
             }},\n\
             _ => ::std::result::Result::Err(::serde::DeError::new(\"expected string or single-key object for enum {name}\")),\n\
             }}"
        )
    } else {
        match &item.bodies[0].1 {
            Fields::Unit => format!("::std::result::Result::Ok({name})"),
            Fields::Named(fs) if item.transparent && fs.len() == 1 => format!(
                "::std::result::Result::Ok({name} {{ {f}: ::serde::Deserialize::from_value(__v)? }})",
                f = fs[0]
            ),
            Fields::Named(fs) => {
                let mut inits = String::new();
                for f in fs {
                    inits.push_str(&format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::Value::get_field(__fields, \"{f}\"))?,\n"
                    ));
                }
                format!(
                    "let __fields = __v.as_object().ok_or_else(|| ::serde::DeError::new(\"expected object for {name}\"))?;\n\
                     ::std::result::Result::Ok({name} {{ {inits} }})"
                )
            }
            Fields::Tuple(1) => format!(
                "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
            ),
            Fields::Tuple(n) => {
                let inits: Vec<String> = (0..*n)
                    .map(|idx| format!("::serde::Deserialize::from_value(&__items[{idx}])?"))
                    .collect();
                format!(
                    "let __items = __v.as_array().ok_or_else(|| ::serde::DeError::new(\"expected array for {name}\"))?;\n\
                     if __items.len() != {n} {{ return ::std::result::Result::Err(::serde::DeError::new(\"wrong arity for {name}\")); }}\n\
                     ::std::result::Result::Ok({name}({inits}))",
                    inits = inits.join(", ")
                )
            }
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}\n"
    )
}
