//! Offline stand-in for `serde_json` over the vendored serde shim.
//!
//! Provides [`to_string`] / [`from_str`] and re-exports [`Value`]. The JSON
//! writer is deterministic (object fields keep declaration order); the
//! parser is a plain recursive-descent implementation covering the full
//! JSON grammar, including `\uXXXX` escapes and surrogate pairs.

#![forbid(unsafe_code)]

use std::fmt;

pub use serde::Value;
use serde::{DeError, Deserialize, Serialize};

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.to_string())
    }
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Parses `s` as JSON and converts it into `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    Ok(T::from_value(&value)?)
}

/// Converts any serializable value into a [`Value`].
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Converts a [`Value`] into `T`.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    Ok(T::from_value(&value)?)
}

// ---- writer ----------------------------------------------------------------

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                // `{:?}` keeps a decimal point on integral floats (`1.0`),
                // preserving the number's floatness across a round trip.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null"); // serde_json's behavior for non-finite
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a complete JSON document.
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                b as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unexpected end of input in escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if !self.eat_keyword("\\u") {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(Error::new("unescaped control character in string"))
                }
                _ => return Err(Error::new("unexpected end of input in string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(mag) = stripped.parse::<u64>() {
                    if mag == 0 {
                        return Ok(Value::U64(0));
                    }
                    if let Ok(i) = text.parse::<i64>() {
                        return Ok(Value::I64(i));
                    }
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_document() {
        let v = Value::Object(vec![
            ("s".into(), Value::Str("a \"b\"\n\\".into())),
            ("n".into(), Value::U64(42)),
            ("neg".into(), Value::I64(-3)),
            ("f".into(), Value::F64(1.5)),
            ("whole".into(), Value::F64(100.0)),
            ("b".into(), Value::Bool(true)),
            ("z".into(), Value::Null),
            (
                "a".into(),
                Value::Array(vec![Value::U64(1), Value::Str("x".into())]),
            ),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn whole_floats_stay_floats() {
        assert_eq!(to_string(&100.0f64).unwrap(), "100.0");
        let back: Value = from_str("100.0").unwrap();
        assert_eq!(back, Value::F64(100.0));
    }

    #[test]
    fn parses_unicode_escapes() {
        let v: Value = from_str(r#""\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v, "é😀");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("\"\\q\"").is_err());
        assert!(from_str::<Value>("nul").is_err());
    }

    #[test]
    fn number_typing() {
        assert_eq!(
            from_str::<Value>("18446744073709551615").unwrap(),
            Value::U64(u64::MAX)
        );
        assert_eq!(from_str::<Value>("-5").unwrap(), Value::I64(-5));
        assert_eq!(from_str::<Value>("2.5e3").unwrap(), Value::F64(2500.0));
    }
}
